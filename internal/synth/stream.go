package synth

import (
	"fdp/internal/program"
	"fdp/internal/xrand"
)

// branchState is the mutable per-site runtime state of a behaviour model.
type branchState struct {
	rng     xrand.SplitMix64 // biased draws and markov switches
	pos     int32            // loop iteration / pattern position
	curTrip int32            // loop: trip count for the current activation
	cur     int32            // indirect: index of the current target
}

// Stream executes a workload's behaviour models, producing the
// architecturally-correct dynamic instruction sequence. It implements
// program.Stream. Streams are infinite: when the entry function returns
// with an empty call stack the program restarts at the entry point.
//
// Oracle side-channels (PeekDirection, PeekTarget) expose the *next*
// outcome of a site without advancing it; they exist solely to implement
// the paper's idealized predictors ("perfect direction", "Perfect All").
//
// Scenario-shaped workloads (see FromSpec) additionally interleave the
// components of the current phase's mix: a deficit scheduler hands the
// front end to one component for switchEvery instructions at a time,
// each component keeping its own PC and call stack, and phase
// boundaries swap in the next phase's fresh component contexts at an
// absolute instruction count. All of it is a pure function of the
// workload, so replaying Next (Advance) reconstructs the exact state.
type Stream struct {
	w     *Workload
	pc    uint64
	state []branchState
	stack []uint64
	entry uint64 // restart target of the active program (Return underflow)

	// Mixed-execution state; unused for plain workloads.
	phase   int      // index into w.phases
	ctxs    []mixCtx // per-component suspended contexts for the phase
	active  int      // index of the running component
	quantum uint64   // instructions left before the scheduler may switch

	// Executed counts dynamic instructions delivered by Next.
	Executed uint64
}

// mixCtx is one mix component's suspended execution context.
type mixCtx struct {
	pc    uint64
	stack []uint64
	ran   uint64 // instructions this component has received in this phase
}

// NewStream creates a fresh deterministic execution of the workload.
// Streams created from the same workload are identical.
func (w *Workload) NewStream() *Stream {
	s := &Stream{
		w:     w,
		pc:    w.entry,
		entry: w.entry,
		state: make([]branchState, len(w.info)),
		stack: make([]uint64, 0, 64),
	}
	ranges := w.seedRanges
	if ranges == nil {
		ranges = []seedRange{{lo: 0, hi: len(w.info), seed: w.Seed}}
	}
	for _, r := range ranges {
		for i := r.lo; i < r.hi; i++ {
			bi := &w.info[i]
			if bi.kind == behNone {
				continue
			}
			s.state[i].rng.Seed(xrand.Mix(r.seed ^ uint64(i)*0x9e37_79b9))
			if bi.kind == behLoop {
				s.state[i].curTrip = s.drawTrip(bi, &s.state[i])
			}
		}
	}
	if len(w.phases) > 0 {
		s.enterPhase(0)
	}
	return s
}

// enterPhase resets the mix state for phase pi: every component gets a
// fresh context at its entry, and the scheduler starts from component 0
// (the deficit rule's tie break on all-zero usage).
func (s *Stream) enterPhase(pi int) {
	ph := &s.w.phases[pi]
	s.phase = pi
	s.ctxs = make([]mixCtx, len(ph.comps))
	for i := range ph.comps {
		s.ctxs[i] = mixCtx{pc: ph.comps[i].entry, stack: make([]uint64, 0, 64)}
	}
	s.active = 0
	s.pc = ph.comps[0].entry
	s.stack = s.ctxs[0].stack
	s.entry = ph.comps[0].entry
	s.quantum = s.w.switchEvery
}

// mixSwitch runs the scenario scheduler after an instruction retires:
// enter the next phase at its boundary, otherwise rotate the active
// component when the quantum is spent. It returns the redirected next
// PC when a switch happened. The caller folds that PC into the retiring
// instruction's NextPC, so the oracle contract (next executed PC ==
// previous DynInst.NextPC) holds across switches — architecturally a
// switch is an asynchronous redirect, like an OS context switch, and
// the front end charges one unavoidable misprediction for it.
func (s *Stream) mixSwitch() (uint64, bool) {
	if s.phase+1 < len(s.w.phases) && s.Executed >= s.w.phases[s.phase+1].at {
		s.enterPhase(s.phase + 1)
		return s.pc, true
	}
	if s.quantum > 0 {
		return 0, false
	}
	comps := s.w.phases[s.phase].comps
	s.quantum = s.w.switchEvery
	if len(comps) < 2 {
		return 0, false
	}
	// Deficit scheduling: resume the component with the lowest weighted
	// usage (ties break to the lowest index), so long-run instruction
	// shares converge to the mix weights while the schedule stays exactly
	// reproducible.
	s.ctxs[s.active].pc = s.pc
	s.ctxs[s.active].stack = s.stack
	best, bestScore := 0, float64(s.ctxs[0].ran)/comps[0].weight
	for j := 1; j < len(comps); j++ {
		if score := float64(s.ctxs[j].ran) / comps[j].weight; score < bestScore {
			best, bestScore = j, score
		}
	}
	if best == s.active {
		return 0, false
	}
	s.active = best
	s.pc = s.ctxs[best].pc
	s.stack = s.ctxs[best].stack
	s.entry = comps[best].entry
	return s.pc, true
}

// Image returns the static image the stream executes from.
func (s *Stream) Image() *program.Image { return s.w.Image() }

// PC returns the address of the next instruction Next will return.
func (s *Stream) PC() uint64 { return s.pc }

// Depth returns the current call-stack depth.
func (s *Stream) Depth() int { return len(s.stack) }

func (s *Stream) idx(pc uint64) int {
	return int((pc - s.w.base) / program.InstBytes)
}

func (s *Stream) drawTrip(bi *branchInfo, st *branchState) int32 {
	t := bi.trip
	if bi.tripVar > 0 {
		t += int32(st.rng.Intn(int(2*bi.tripVar+1))) - bi.tripVar
	}
	if t < 2 {
		t = 2
	}
	return t
}

// Next returns the next executed instruction and advances the stream.
func (s *Stream) Next() program.DynInst {
	si, ok := s.w.img.At(s.pc)
	if !ok {
		panic("synth: stream PC escaped image") // generator invariant
	}
	d := program.DynInst{SI: si}
	switch si.Type {
	case program.NonBranch:
		d.NextPC = si.FallThrough()
	case program.CondDirect:
		taken := s.stepCond(s.idx(s.pc))
		d.Taken = taken
		if taken {
			d.NextPC = si.Target
		} else {
			d.NextPC = si.FallThrough()
		}
	case program.Jump:
		d.Taken = true
		d.NextPC = si.Target
	case program.Call:
		d.Taken = true
		d.NextPC = si.Target
		s.stack = append(s.stack, si.FallThrough())
	case program.IndJump:
		d.Taken = true
		d.NextPC = s.stepIndirect(s.idx(s.pc))
	case program.IndCall:
		d.Taken = true
		d.NextPC = s.stepIndirect(s.idx(s.pc))
		s.stack = append(s.stack, si.FallThrough())
	case program.Return:
		d.Taken = true
		if n := len(s.stack); n > 0 {
			d.NextPC = s.stack[n-1]
			s.stack = s.stack[:n-1]
		} else {
			d.NextPC = s.entry // program outer loop (active component's entry)
		}
	}
	s.pc = d.NextPC
	s.Executed++
	if len(s.w.phases) > 0 {
		s.ctxs[s.active].ran++
		if s.quantum > 0 {
			s.quantum--
		}
		// Scheduling points are NonBranch retirements only: a switch after
		// a branch would fold the redirect target into that branch's
		// architectural NextPC and train the predictors with targets no
		// real branch ever produces. After a plain instruction the
		// redirect is an honest asynchronous transfer.
		if si.Type == program.NonBranch {
			if npc, switched := s.mixSwitch(); switched {
				d.NextPC = npc
			}
		}
	}
	return d
}

// Advance executes n instructions without returning them — the restart
// path of checkpointed warmup, which must replay the behaviour models
// (every RNG draw, loop position and stack operation) to reach the same
// stream state a full execution would, but needs none of the DynInsts.
func (s *Stream) Advance(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Next()
	}
}

// stepCond advances the conditional behaviour at image index i and returns
// the direction.
func (s *Stream) stepCond(i int) bool {
	bi := &s.w.info[i]
	st := &s.state[i]
	switch bi.kind {
	case behBiased:
		return st.rng.Bool(bi.p)
	case behLoop:
		st.pos++
		if st.pos < st.curTrip {
			return true
		}
		st.pos = 0
		st.curTrip = s.drawTrip(bi, st)
		return false
	case behPattern:
		taken := bi.pattern>>uint(st.pos)&1 == 1
		st.pos++
		if st.pos >= int32(bi.patLen) {
			st.pos = 0
		}
		return taken
	default:
		// Degenerate site (e.g. generated with kind behNone); treat as
		// never taken so execution still progresses.
		return false
	}
}

// stepIndirect advances the indirect behaviour at image index i and
// returns the chosen target.
func (s *Stream) stepIndirect(i int) uint64 {
	bi := &s.w.info[i]
	st := &s.state[i]
	if len(bi.targets) == 1 {
		return bi.targets[0]
	}
	if bi.kind == behRotate {
		st.cur = (st.cur + 1) % int32(len(bi.targets))
		return bi.targets[st.cur]
	}
	if !st.rng.Bool(bi.stay) {
		st.cur = int32(st.rng.Intn(len(bi.targets)))
	}
	return bi.targets[st.cur]
}

// PeekDirection returns the direction the conditional branch at pc would
// take on its next execution, without advancing its state. It reports
// false for unknown sites. This is the oracle used by the "perfect
// direction predictor" configuration.
func (s *Stream) PeekDirection(pc uint64) bool {
	if !s.w.img.Contains(pc) {
		return false
	}
	i := s.idx(pc)
	bi := &s.w.info[i]
	st := &s.state[i]
	switch bi.kind {
	case behBiased:
		clone := st.rng // value copy
		return clone.Bool(bi.p)
	case behLoop:
		return st.pos+1 < st.curTrip
	case behPattern:
		return bi.pattern>>uint(st.pos)&1 == 1
	}
	return false
}

// PeekTarget returns the target the indirect branch at pc would choose on
// its next execution, without advancing its state. ok is false for
// non-indirect sites. This is the oracle used by "Perfect All".
func (s *Stream) PeekTarget(pc uint64) (uint64, bool) {
	if !s.w.img.Contains(pc) {
		return 0, false
	}
	i := s.idx(pc)
	bi := &s.w.info[i]
	if (bi.kind != behIndirect && bi.kind != behRotate) || len(bi.targets) == 0 {
		return 0, false
	}
	st := &s.state[i]
	if len(bi.targets) == 1 {
		return bi.targets[0], true
	}
	if bi.kind == behRotate {
		return bi.targets[(st.cur+1)%int32(len(bi.targets))], true
	}
	clone := st.rng
	cur := st.cur
	if !clone.Bool(bi.stay) {
		cur = int32(clone.Intn(len(bi.targets)))
	}
	return bi.targets[cur], true
}

// PeekReturnTarget returns the address the next executed Return will jump
// to (top of the architectural call stack, or the entry on underflow).
func (s *Stream) PeekReturnTarget() uint64 {
	if n := len(s.stack); n > 0 {
		return s.stack[n-1]
	}
	return s.entry
}
