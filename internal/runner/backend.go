package runner

import (
	"context"
	"errors"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// Backend executes one attempt of one spec somewhere other than the
// in-process simulator — the seam the distributed coordinator
// (internal/dist) plugs into Options.Backend. Execute still owns
// everything around the attempt: scheduling, the result cache and
// journal, retry classification and backoff, watchdog supervision and
// keep-going quarantine. The backend only answers "run this spec and
// give me its result", so a remote campaign inherits the single-box
// robustness contract unchanged.
type Backend interface {
	// Run executes the attempt and returns its measurement record plus
	// (when job.Observe) its manifest. Errors are classified by
	// runner.Classify, so a backend signals retryability the same way a
	// local attempt does: wrap or return a *runner.Error with the class,
	// or let the network-error mapping classify raw causes. An error
	// wrapping ErrBackendUnavailable makes Execute fall back to local
	// in-process execution for that attempt instead of failing it.
	Run(ctx context.Context, job BackendJob) (*stats.Run, *obs.Manifest, error)
}

// BackendJob is everything a Backend needs to execute one attempt and
// feed the same observability surfaces a local attempt would.
type BackendJob struct {
	// Spec is the simulation to run; Key is its content hash
	// (Spec.Key()), precomputed so backends don't re-hash per attempt.
	Spec *Spec
	Key  string
	// Index is the spec index within the campaign; Attempt is 1-based.
	Index   int
	Attempt int
	// Label is the "config/workload" display label.
	Label string
	// Observe asks for a manifest; Check enables the online invariant
	// checker on the executing side.
	Observe bool
	Check   bool
	// Heartbeat is the attempt's progress heartbeat. Backends must beat
	// it as the remote simulation advances so the local watchdog (and
	// /progress) see remote forward progress exactly like local cycles.
	Heartbeat *core.Heartbeat
	// Spans, when non-nil, receives the backend's lifecycle spans
	// (lease / reassign / worker_lost) on the campaign timeline.
	Spans *obs.SpanLog
}

// ErrBackendUnavailable signals that the configured backend cannot
// currently execute anything at all (every worker lost or unreachable).
// Execute treats an attempt error wrapping it as "degrade, don't fail":
// the attempt re-runs on the local in-process path, so a fleet that
// dies mid-campaign costs throughput, never results.
var ErrBackendUnavailable = errors.New("runner: execution backend unavailable")
