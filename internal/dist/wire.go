// Package dist is the fault-tolerant distributed execution backend
// behind runner.Options.Backend: a Coordinator leases content-hashed
// runner.Specs to HTTP workers (cmd/fdpworker), which execute them
// through the same local runner.Execute path and stream progress
// heartbeats plus a CRC-covered result envelope back. The coordinator
// reassigns expired or failed leases to surviving workers with the
// runner's classified retry taxonomy, dedupes double-completions by
// spec key (first valid result wins), and degrades to local execution
// when the whole fleet is lost. The protocol is an execution detail:
// results are byte-identical to a local run (the chaos gate proves it
// under kill -9, hangs and a corrupting link). See docs/ROBUSTNESS.md.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/stats"
	"fdp/internal/synth"
	"fdp/internal/wspec"
)

// ProtoVersion is the wire-protocol version. A worker whose /healthz
// reports a different proto — or a different runner.Epoch, which pins
// simulator semantics — is version-skewed: assigning it work could mix
// results from two different simulators into one campaign, so the
// coordinator classifies skew as fatal for that worker and stops using
// it.
const ProtoVersion = 1

// maxJobBytes bounds a /run request body (a spec document plus a
// config is a few KB; the bound only guards against garbage).
const maxJobBytes = 8 << 20

// Hello is the /healthz response: the worker's protocol and simulator
// versions plus its capacity and lifetime job counts.
type Hello struct {
	Proto int `json:"proto"`
	Epoch int `json:"epoch"`
	Slots int `json:"slots"`
	Done  int64 `json:"jobs_done"`
	Failed int64 `json:"jobs_failed"`
}

// Job is the wire form of one leased spec: everything a worker needs to
// reconstruct the runner.Spec bit-for-bit. Key is the coordinator's
// content hash; the worker recomputes it from the reconstructed spec
// and refuses on mismatch, so request-direction corruption is caught by
// the same content addressing that names the result.
type Job struct {
	// Lease is the coordinator-chosen lease label (diagnostics only).
	Lease string `json:"lease"`
	// Key is Spec.Key() — the result's content address.
	Key string `json:"key"`

	Config   core.Config `json:"config"`
	Workload string      `json:"workload"`
	Class    string      `json:"class"`
	Seed     uint64      `json:"seed"`
	Warmup   uint64      `json:"warmup"`
	Measure  uint64      `json:"measure"`
	FFwd     bool        `json:"ffwd,omitempty"`
	// SpecHash/SpecDoc identify spec-defined workloads: the canonical
	// wspec document travels with the lease and must hash to SpecHash on
	// the worker.
	SpecHash string `json:"spec_hash,omitempty"`
	SpecDoc  string `json:"spec_doc,omitempty"`

	// Observe asks the worker for a manifest; Check enables its online
	// invariant checker.
	Observe bool `json:"observe,omitempty"`
	Check   bool `json:"check,omitempty"`
	// HeartbeatMS is the requested heartbeat cadence for the response
	// stream.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
}

// JobFromBackend builds the wire Job for one runner.BackendJob.
func JobFromBackend(bj runner.BackendJob, lease string, hbEvery int64) Job {
	sp := bj.Spec
	return Job{
		Lease: lease, Key: bj.Key,
		Config: sp.Config, Workload: sp.Workload, Class: sp.Class,
		Seed: sp.Seed, Warmup: sp.Warmup, Measure: sp.Measure, FFwd: sp.FFwd,
		SpecHash: sp.SpecHash, SpecDoc: sp.SpecDoc,
		Observe: bj.Observe, Check: bj.Check, HeartbeatMS: hbEvery,
	}
}

// BuildSpec reconstructs the executable runner.Spec on the worker and
// verifies its content hash against the lease's Key. Any divergence —
// an unknown workload, a spec document that hashes differently, a
// config corrupted in flight — surfaces here, classified like the
// corruption it is.
func (j *Job) BuildSpec() (runner.Spec, error) {
	var w *synth.Workload
	if j.SpecDoc != "" {
		doc, err := wspec.Parse([]byte(j.SpecDoc))
		if err != nil {
			return runner.Spec{}, &runner.Error{Class: runner.ClassCorruptInput, Job: j.Lease,
				Err: fmt.Errorf("dist: lease spec document: %w", err)}
		}
		if h := doc.Hash(); h != j.SpecHash {
			return runner.Spec{}, &runner.Error{Class: runner.ClassCorruptInput, Job: j.Lease,
				Err: fmt.Errorf("dist: spec document hashes to %.12s, lease says %.12s", h, j.SpecHash)}
		}
		w, err = synth.FromSpec(doc)
		if err != nil {
			return runner.Spec{}, &runner.Error{Class: runner.ClassCorruptInput, Job: j.Lease,
				Err: fmt.Errorf("dist: compiling lease spec: %w", err)}
		}
	} else {
		w = synth.ByName(j.Workload)
		if w == nil {
			// A workload this build does not know is skew, not corruption:
			// the coordinator was built with workloads we lack.
			return runner.Spec{}, fmt.Errorf("%w: unknown built-in workload %q", ErrVersionSkew, j.Workload)
		}
		if w.Seed != j.Seed {
			// Seed-offset studies shift every built-in's master seed
			// uniformly; regenerate at the offset and re-resolve.
			for _, cand := range synth.WorkloadsWithSeedOffset(j.Seed - w.Seed) {
				if cand.Name == j.Workload {
					w = cand
					break
				}
			}
		}
	}
	sp := runner.WorkloadSpec(j.Config, w, j.Warmup, j.Measure)
	sp.FFwd = j.FFwd
	if got := sp.Key(); got != j.Key {
		return runner.Spec{}, &runner.Error{Class: runner.ClassCorruptInput, Job: j.Lease,
			Err: fmt.Errorf("dist: reconstructed spec hashes to %.12s, lease says %.12s", got, j.Key)}
	}
	return sp, nil
}

// Stream-record types on the /run response (one JSON object per line).
const (
	recHeartbeat = "hb"  // {"t":"hb","c":<cycles>}
	recResult    = "res" // {"t":"res","env":<Envelope>}
	recError     = "err" // {"t":"err","class":<ErrClass>,"msg":...}
)

// streamRec is one line of the /run response stream.
type streamRec struct {
	T      string    `json:"t"`
	Cycles uint64    `json:"c,omitempty"`
	Env    *Envelope `json:"env,omitempty"`
	Class  string    `json:"class,omitempty"`
	Msg    string    `json:"msg,omitempty"`
}

// Sentinel wire errors, matched with errors.Is.
var (
	// ErrCorrupt marks a result envelope (or stream line) that failed
	// integrity checks: bad CRC, bad schema, wrong key, undecodable JSON.
	ErrCorrupt = errors.New("dist: corrupt result envelope")
	// ErrVersionSkew marks a worker running a different protocol version
	// or simulator epoch; its results must never enter the campaign.
	ErrVersionSkew = errors.New("dist: protocol or epoch version skew")
)

// Envelope is the CRC-covered result wrapper a worker returns: the
// nested payload (run + manifest) is opaque bytes under a CRC-32, with
// the protocol version, simulator epoch and spec key alongside, so the
// coordinator verifies integrity and identity before anything is
// decoded into the campaign. The shape deliberately mirrors the disk
// cache's v2 entry: the same failure model (bit flips in transit vs at
// rest), the same defense.
type Envelope struct {
	Proto   int             `json:"proto"`
	Epoch   int             `json:"epoch"`
	Key     string          `json:"key"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// envPayload is the CRC-covered interior.
type envPayload struct {
	Run      *stats.Run    `json:"run"`
	Manifest *obs.Manifest `json:"manifest,omitempty"`
}

// SealResult wraps a finished run in an integrity-checked envelope.
func SealResult(key string, run *stats.Run, m *obs.Manifest) (*Envelope, error) {
	if run == nil {
		return nil, fmt.Errorf("dist: sealing a nil run")
	}
	payload, err := json.Marshal(envPayload{Run: run, Manifest: m})
	if err != nil {
		return nil, fmt.Errorf("dist: sealing result: %w", err)
	}
	return &Envelope{
		Proto: ProtoVersion, Epoch: runner.Epoch, Key: key,
		CRC: crc32.ChecksumIEEE(payload), Payload: payload,
	}, nil
}

// Open verifies the envelope — protocol, epoch, key, CRC — and decodes
// the payload. Version/epoch mismatches return ErrVersionSkew; every
// integrity failure returns ErrCorrupt (both wrapped, for errors.Is).
func (e *Envelope) Open(wantKey string) (*stats.Run, *obs.Manifest, error) {
	if e.Proto != ProtoVersion || e.Epoch != runner.Epoch {
		return nil, nil, fmt.Errorf("%w: envelope proto=%d epoch=%d, want proto=%d epoch=%d",
			ErrVersionSkew, e.Proto, e.Epoch, ProtoVersion, runner.Epoch)
	}
	if e.Key != wantKey {
		return nil, nil, fmt.Errorf("%w: result keyed %.12s, lease wants %.12s", ErrCorrupt, e.Key, wantKey)
	}
	if got := crc32.ChecksumIEEE(e.Payload); got != e.CRC {
		return nil, nil, fmt.Errorf("%w: payload CRC %08x, envelope says %08x", ErrCorrupt, got, e.CRC)
	}
	var p envPayload
	if err := json.Unmarshal(e.Payload, &p); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if p.Run == nil {
		return nil, nil, fmt.Errorf("%w: payload has no run", ErrCorrupt)
	}
	return p.Run, p.Manifest, nil
}

// ParseEnvelope decodes an envelope's JSON (integrity is checked by
// Open, not here).
func ParseEnvelope(data []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &e, nil
}

// classFromString maps an ErrClass wire name back to the class
// (unknown names land on fatal, the conservative default).
func classFromString(s string) runner.ErrClass {
	switch s {
	case runner.ClassTransient.String():
		return runner.ClassTransient
	case runner.ClassCorruptInput.String():
		return runner.ClassCorruptInput
	default:
		return runner.ClassFatal
	}
}
