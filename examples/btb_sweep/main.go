// btb_sweep explores how FDP and post-fetch correction interact with BTB
// capacity (in the spirit of the paper's Figs. 7 and 11): PFC recovers
// most of what a small BTB loses, and the gain fades as the BTB grows.
package main

import (
	"fmt"
	"log"

	"fdp"
)

func main() {
	// A server-class workload stresses the BTB the most.
	w := fdp.WorkloadByName("server_b")
	const warmup, measure = 150_000, 500_000

	base, err := fdp.Simulate(fdp.BaselineConfig(), w, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: FDP speedup over no-FDP baseline, by BTB size and PFC\n\n", w.Name)
	fmt.Printf("%-8s  %10s  %10s  %12s\n", "BTB", "PFC off", "PFC on", "PFC resteers")
	for _, entries := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		var sp [2]float64
		var resteers uint64
		for i, pfc := range []bool{false, true} {
			cfg := fdp.DefaultConfig()
			cfg.BTBEntries = entries
			cfg.PFC = pfc
			r, err := fdp.Simulate(cfg, w, warmup, measure)
			if err != nil {
				log.Fatal(err)
			}
			sp[i] = r.Speedup(base)
			if pfc {
				resteers = r.PFCResteers
			}
		}
		fmt.Printf("%-8s  %+9.1f%%  %+9.1f%%  %12d\n",
			fmt.Sprintf("%dK", entries/1024), 100*(sp[0]-1), 100*(sp[1]-1), resteers)
	}
	fmt.Println("\nExpected shape: PFC helps most at small BTBs (it repairs BTB-miss")
	fmt.Println("taken branches at pre-decode) and approaches neutral at 32K entries.")
}
