package synth

import (
	"testing"

	"fdp/internal/program"
)

func testParams() Params {
	p := SpecParams(0)
	p.Name = "test"
	p.Funcs = 40
	return p
}

func TestValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"empty name", func(p *Params) { p.Name = "" }},
		{"funcs", func(p *Params) { p.Funcs = 1 }},
		{"levels low", func(p *Params) { p.Levels = 1 }},
		{"levels high", func(p *Params) { p.Levels = p.Funcs + 1 }},
		{"blocks", func(p *Params) { p.BlocksPerFuncMean = 1 }},
		{"blocklen", func(p *Params) { p.BlockLenMean = 0 }},
		{"neg frac", func(p *Params) { p.JumpFrac = -0.1 }},
		{"frac sum", func(p *Params) { p.CallFrac = 0.99 }},
		{"loopfrac", func(p *Params) { p.LoopFrac = 1.5 }},
		{"trip", func(p *Params) { p.TripMean = 1 }},
		{"indtargets", func(p *Params) { p.IndTargetsMax = 1 }},
		{"markov", func(p *Params) { p.MarkovStay = 1.0 }},
		{"hot", func(p *Params) { p.HotFraction = 0 }},
	}
	for _, m := range mutations {
		p := testParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad params", m.name)
		}
	}
}

// TestValidateBoundaries pins the exact edges of every validated range:
// the last accepted value and the first rejected one. The spec compiler
// funnels user-authored overrides through Validate, so these edges are
// the public contract of the params schema.
func TestValidateBoundaries(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		ok   bool
	}{
		{"funcs=2 min ok", func(p *Params) { p.Funcs = 2; p.Levels = 2 }, true},
		{"funcs=1 under", func(p *Params) { p.Funcs = 1 }, false},
		{"levels=2 min ok", func(p *Params) { p.Levels = 2 }, true},
		{"levels=funcs max ok", func(p *Params) { p.Levels = p.Funcs }, true},
		{"levels=funcs+1 over", func(p *Params) { p.Levels = p.Funcs + 1 }, false},
		{"blocks=2 min ok", func(p *Params) { p.BlocksPerFuncMean = 2 }, true},
		{"blocks=1 under", func(p *Params) { p.BlocksPerFuncMean = 1 }, false},
		{"blocklen=1 min ok", func(p *Params) { p.BlockLenMean = 1 }, true},
		{"blocklen=0 under", func(p *Params) { p.BlockLenMean = 0 }, false},
		{"frac sum=0.95 max ok", func(p *Params) {
			p.JumpFrac, p.CallFrac, p.IndJumpFrac, p.IndCallFrac = 0.95, 0, 0, 0
		}, true},
		{"frac sum>0.95 over", func(p *Params) {
			p.JumpFrac, p.CallFrac, p.IndJumpFrac, p.IndCallFrac = 0.951, 0, 0, 0
		}, false},
		{"frac=0 min ok", func(p *Params) {
			p.JumpFrac, p.CallFrac, p.IndJumpFrac, p.IndCallFrac = 0, 0, 0, 0
		}, true},
		{"loopfrac=0 ok", func(p *Params) { p.LoopFrac = 0 }, true},
		{"loopfrac=1 ok", func(p *Params) { p.LoopFrac = 1 }, true},
		{"loopfrac>1 over", func(p *Params) { p.LoopFrac = 1.0001 }, false},
		{"trip=2 min ok", func(p *Params) { p.TripMean = 2 }, true},
		{"trip=1 under", func(p *Params) { p.TripMean = 1 }, false},
		{"indtargets=2 min ok", func(p *Params) { p.IndTargetsMax = 2 }, true},
		{"indtargets=1 under", func(p *Params) { p.IndTargetsMax = 1 }, false},
		{"markov=0 min ok", func(p *Params) { p.MarkovStay = 0 }, true},
		{"markov=1 excluded", func(p *Params) { p.MarkovStay = 1 }, false},
		{"markov just under 1 ok", func(p *Params) { p.MarkovStay = 0.999 }, true},
		{"hot=1 max ok", func(p *Params) { p.HotFraction = 1 }, true},
		{"hot=0 excluded", func(p *Params) { p.HotFraction = 0 }, false},
		{"hot>1 over", func(p *Params) { p.HotFraction = 1.0001 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testParams()
			tc.mut(&p)
			err := p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("boundary value rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("out-of-range value accepted")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(testParams(), "spec", 7)
	b := MustGenerate(testParams(), "spec", 7)
	if a.Image().Size() != b.Image().Size() {
		t.Fatalf("image sizes differ: %d vs %d", a.Image().Size(), b.Image().Size())
	}
	sa, sb := a.NewStream(), b.NewStream()
	for i := 0; i < 100000; i++ {
		da, db := sa.Next(), sb.Next()
		if da != db {
			t.Fatalf("streams diverged at inst %d: %+v vs %+v", i, da, db)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := MustGenerate(testParams(), "spec", 1)
	b := MustGenerate(testParams(), "spec", 2)
	sa, sb := a.NewStream(), b.NewStream()
	same := 0
	for i := 0; i < 10000; i++ {
		if sa.Next().NextPC == sb.Next().NextPC {
			same++
		}
	}
	if same == 10000 {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamsFromSameWorkloadIdentical(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 3)
	s1 := w.NewStream()
	// advance s1, then make a fresh one; fresh must restart from scratch
	for i := 0; i < 5000; i++ {
		s1.Next()
	}
	s2 := w.NewStream()
	s3 := w.NewStream()
	for i := 0; i < 20000; i++ {
		if s2.Next() != s3.Next() {
			t.Fatalf("fresh streams diverged at %d", i)
		}
	}
}

// The executor must follow architectural semantics: NextPC of each DynInst
// equals PC of the following one, directions match targets, calls/returns
// balance.
func TestStreamSemantics(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 11)
	s := w.NewStream()
	prev := s.Next()
	maxDepth := 0
	for i := 0; i < 200000; i++ {
		d := s.Next()
		if d.SI.PC != prev.NextPC {
			t.Fatalf("inst %d: PC %#x != prev NextPC %#x", i, d.SI.PC, prev.NextPC)
		}
		switch d.SI.Type {
		case program.NonBranch:
			if d.Taken || d.NextPC != d.SI.FallThrough() {
				t.Fatalf("non-branch outcome %+v", d)
			}
		case program.CondDirect:
			want := d.SI.FallThrough()
			if d.Taken {
				want = d.SI.Target
			}
			if d.NextPC != want {
				t.Fatalf("cond NextPC %#x, want %#x", d.NextPC, want)
			}
		case program.Jump, program.Call:
			if !d.Taken || d.NextPC != d.SI.Target {
				t.Fatalf("direct uncond outcome %+v", d)
			}
		default:
			if !d.Taken {
				t.Fatalf("indirect/return not taken: %+v", d)
			}
		}
		if s.Depth() > maxDepth {
			maxDepth = s.Depth()
		}
		prev = d
	}
	if maxDepth == 0 {
		t.Error("no calls executed in 200k instructions")
	}
	if maxDepth > 16 {
		t.Errorf("call depth %d exceeds level bound", maxDepth)
	}
}

func TestReturnsMatchCallStack(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 13)
	s := w.NewStream()
	var shadow []uint64
	for i := 0; i < 200000; i++ {
		d := s.Next()
		switch {
		case d.SI.Type.IsCall():
			shadow = append(shadow, d.SI.FallThrough())
		case d.SI.Type.IsReturn():
			if len(shadow) == 0 {
				if d.NextPC != w.Entry() {
					t.Fatalf("underflow return went to %#x, want entry %#x", d.NextPC, w.Entry())
				}
			} else {
				want := shadow[len(shadow)-1]
				shadow = shadow[:len(shadow)-1]
				if d.NextPC != want {
					t.Fatalf("return to %#x, want %#x", d.NextPC, want)
				}
			}
		}
	}
}

func TestPeekDirectionMatchesNext(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 17)
	s := w.NewStream()
	checked := 0
	for i := 0; i < 100000; i++ {
		pc := s.PC()
		si := w.Image().AtOrSequential(pc)
		var want bool
		havePeek := false
		if si.Type == program.CondDirect {
			want = s.PeekDirection(pc)
			havePeek = true
		}
		d := s.Next()
		if havePeek {
			checked++
			if d.Taken != want {
				t.Fatalf("inst %d: PeekDirection=%v but Taken=%v", i, want, d.Taken)
			}
		}
	}
	if checked < 1000 {
		t.Errorf("only %d conditionals checked", checked)
	}
}

func TestPeekTargetMatchesNext(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 19)
	s := w.NewStream()
	checked := 0
	for i := 0; i < 300000; i++ {
		pc := s.PC()
		si := w.Image().AtOrSequential(pc)
		var want uint64
		havePeek := false
		if si.Type.IsIndirect() {
			var ok bool
			want, ok = s.PeekTarget(pc)
			havePeek = ok
		} else if si.Type.IsReturn() {
			want = s.PeekReturnTarget()
			havePeek = true
		}
		d := s.Next()
		if havePeek {
			checked++
			if d.NextPC != want {
				t.Fatalf("inst %d (%v): peek=%#x actual=%#x", i, si.Type, want, d.NextPC)
			}
		}
	}
	if checked < 500 {
		t.Errorf("only %d indirect/returns checked", checked)
	}
}

func TestPeekOnNonSites(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 23)
	s := w.NewStream()
	if s.PeekDirection(0x10) {
		t.Error("PeekDirection outside image = true")
	}
	if _, ok := s.PeekTarget(0x10); ok {
		t.Error("PeekTarget outside image ok")
	}
	if _, ok := s.PeekTarget(w.Entry()); ok {
		// entry is the first instruction of function 0; it may or may not
		// be indirect, but for our generator the first block has body
		// instructions or a terminator; only indirect sites report ok.
		si := w.Image().AtOrSequential(w.Entry())
		if !si.Type.IsIndirect() {
			t.Error("PeekTarget ok on non-indirect site")
		}
	}
}

func TestWorkloadStats(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 29)
	if w.FootprintBytes() < 10_000 {
		t.Errorf("footprint %d bytes suspiciously small", w.FootprintBytes())
	}
	if w.StaticBranches() < 100 {
		t.Errorf("only %d static branches", w.StaticBranches())
	}
	h := w.Image().CountByType()
	if h[program.Return] == 0 || h[program.Call] == 0 || h[program.CondDirect] == 0 {
		t.Errorf("missing instruction kinds: %v", h)
	}
}

func TestStandardWorkloads(t *testing.T) {
	ws := StandardWorkloads()
	if len(ws) != 12 {
		t.Fatalf("got %d standard workloads, want 12", len(ws))
	}
	seen := map[string]bool{}
	classes := map[string]int{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %s", w.Name)
		}
		seen[w.Name] = true
		classes[w.Class]++
	}
	if classes["server"] != 4 || classes["client"] != 4 || classes["spec"] != 4 {
		t.Errorf("class counts = %v", classes)
	}
	// Registry lookups.
	if ByName("server_a") == nil {
		t.Error("ByName(server_a) = nil")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
	if len(Names()) != 12 {
		t.Errorf("Names() len = %d", len(Names()))
	}
	// Caching: same pointer on second call.
	if &StandardWorkloads()[0] == nil || StandardWorkloads()[0] != ws[0] {
		t.Error("StandardWorkloads not cached")
	}
}

// Server workloads must have footprints far larger than a 32KB L1I; that
// is the paper's workload-selection criterion proxy.
func TestServerFootprintExceedsL1I(t *testing.T) {
	if testing.Short() {
		t.Skip("standard workload generation in -short")
	}
	for _, w := range StandardWorkloads() {
		if w.Class == "server" && w.FootprintBytes() < 8*32*1024 {
			t.Errorf("%s footprint %dKB < 8x L1I", w.Name, w.FootprintBytes()/1024)
		}
		if w.Class == "spec" && w.FootprintBytes() < 32*1024 {
			t.Errorf("%s footprint %dKB below L1I size", w.Name, w.FootprintBytes()/1024)
		}
	}
}

// Dynamic coverage: a long execution should touch a large fraction of hot
// code, not spin in one loop.
func TestDynamicCodeCoverage(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 31)
	s := w.NewStream()
	lines := map[uint64]bool{}
	for i := 0; i < 300000; i++ {
		lines[s.Next().SI.PC>>6] = true
	}
	footLines := int(w.FootprintBytes() / 64)
	if len(lines) < footLines/20 {
		t.Errorf("touched %d/%d cache lines; execution too concentrated", len(lines), footLines)
	}
}

// Standard server workloads must have dynamic footprints exceeding the
// 32KB L1I (512 64-byte lines); that is what makes them frontend-bound.
func TestStandardDynamicFootprintExceedsL1I(t *testing.T) {
	if testing.Short() {
		t.Skip("standard workload execution in -short")
	}
	for _, name := range []string{"server_a", "client_a"} {
		w := ByName(name)
		s := w.NewStream()
		lines := map[uint64]bool{}
		for i := 0; i < 2_000_000; i++ {
			lines[s.Next().SI.PC>>6] = true
		}
		if len(lines) < 512 {
			t.Errorf("%s dynamic footprint only %d lines (32KB L1I would hold it)", name, len(lines))
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := testParams()
	p.Funcs = 0
	if _, err := Generate(p, "spec", 1); err == nil {
		t.Error("Generate accepted invalid params")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic on bad params")
		}
	}()
	p := testParams()
	p.Funcs = 0
	MustGenerate(p, "spec", 1)
}

func BenchmarkStreamNext(b *testing.B) {
	w := MustGenerate(testParams(), "spec", 37)
	s := w.NewStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func TestWorkloadsWithSeedOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("generates full suites")
	}
	a := WorkloadsWithSeedOffset(0)
	b := WorkloadsWithSeedOffset(0x999)
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("suite sizes %d/%d", len(a), len(b))
	}
	// Offset 0 must equal the cached standard suite behaviourally.
	std := StandardWorkloads()
	sa, ss := a[0].NewStream(), std[0].NewStream()
	for i := 0; i < 10_000; i++ {
		if sa.Next() != ss.Next() {
			t.Fatal("offset-0 suite differs from standard suite")
		}
	}
	// Different offsets must give different programs.
	if a[0].Image().Size() == b[0].Image().Size() {
		sa2, sb := a[0].NewStream(), b[0].NewStream()
		same := true
		for i := 0; i < 1_000; i++ {
			if sa2.Next() != sb.Next() {
				same = false
				break
			}
		}
		if same {
			t.Error("different seed offsets produced identical streams")
		}
	}
}
