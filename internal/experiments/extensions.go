package experiments

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/stats"
)

// Extensions returns studies beyond the paper's artifacts: the
// future-work / commercial-design directions the paper points at
// (multi-level BTBs in §II-A, stronger direction predictors).
func Extensions() []Experiment {
	return []Experiment{
		{"ext-btb2l", "Two-level BTB hierarchy (extension)", ExtBTB2L},
		{"ext-preds", "Modern direction predictors: perceptron, TAGE-SC-L (extension)", ExtPredictors},
		{"ext-seeds", "Seed sensitivity of the headline result (extension)", ExtSeeds},
		{"ext-bbbtb", "Instruction BTB vs basic-block BTB (extension)", ExtBBBTB},
		{"ext-data", "Backend-model robustness (extension)", ExtDataModel},
		{"ext-shape", "Workload-shape sweep over a spec grid (extension)", ExtShape},
	}
}

// AllWithExtensions returns the paper experiments followed by the
// extensions.
func AllWithExtensions() []Experiment {
	return append(All(), Extensions()...)
}

// ExtBTB2L compares flat BTBs against two-level hierarchies at equal
// second-level capacity: the L1 BTB hides the big array's redirect bubble,
// which matters exactly where Fig. 13b shows latency sensitivity.
func ExtBTB2L(opts Options) (*Result, error) {
	configs := []core.Config{noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))}
	for _, lat := range []int{2, 4} {
		flat := core.DefaultConfig()
		flat.Name = fmt.Sprintf("flat-8k-lat%d", lat)
		flat.BTBLatency = lat
		configs = append(configs, flat)

		two := core.DefaultConfig()
		two.Name = fmt.Sprintf("2level-1k+8k-lat%d", lat)
		two.BTBLatency = lat
		two.L1BTBEntries = 1024
		two.L1BTBWays = 4
		two.L2BTBPenalty = lat
		configs = append(configs, two)
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Extension: two-level BTB (speedup over no-FDP baseline)",
		"config", "speedup", "branch MPKI")
	for _, cfg := range configs[1:] {
		s := sets[cfg.Name]
		t.AddRow(cfg.Name, speedupPct(s.GeoMeanSpeedup(baseSet)), s.MeanBranchMPKI())
	}
	return &Result{
		ID: "ext-btb2l", Title: "Two-level BTB hierarchy",
		Tables: []*stats.Table{t},
		Notes: []string{
			"the L1 BTB absorbs the second level's redirect bubble; the gap between",
			"flat and two-level grows with the big array's latency (§II-A direction)",
		},
	}, nil
}

// ExtPredictors extends Fig. 12 with the perceptron (Jimenez/Lin) and
// TAGE-SC-L (Seznec) predictors the paper cites.
func ExtPredictors(opts Options) (*Result, error) {
	preds := []core.DirKind{
		core.DirGshare, core.DirPerceptron, core.DirTAGE18,
		core.DirTAGESCL24, core.DirTAGESCL64, core.DirPerfect,
	}
	configs := []core.Config{noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))}
	for _, d := range preds {
		c := core.DefaultConfig()
		c.Dir = d
		c.Name = string(d)
		configs = append(configs, c)
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Extension: direction predictor ladder (FDP, PFC on)",
		"predictor", "speedup", "branch MPKI", "dir MPKI")
	for _, d := range preds {
		s := sets[string(d)]
		var dirMis, insts uint64
		for _, r := range s.Runs {
			dirMis += r.DirMispredictions
			insts += r.Instructions
		}
		t.AddRow(string(d), speedupPct(s.GeoMeanSpeedup(baseSet)),
			s.MeanBranchMPKI(), 1000*float64(dirMis)/float64(insts))
	}
	return &Result{
		ID: "ext-preds", Title: "Modern direction predictors",
		Tables: []*stats.Table{t},
		Notes: []string{
			"the FDP frontend scales with predictor quality: gshare < perceptron <",
			"TAGE < TAGE-SC-L < perfect, mirroring the industry trend the paper cites",
		},
	}, nil
}

// ExtBBBTB compares the industry instruction-BTB organization (taken-only
// allocation + THR, the paper's design) against the academic basic-block
// BTB (all-branch blocks + direction history, as in Boomerang/Shotgun) at
// equal entry count and at equal storage (BB entries cost ~13 bytes vs ~7).
func ExtBBBTB(opts Options) (*Result, error) {
	mk := func(name string, bb bool, entries int) core.Config {
		c := core.DefaultConfig()
		c.Name = name
		c.BTBEntries = entries
		if bb {
			c.BasicBlockBTB = true
			c.HistPolicy = core.HistGHRFix // the combo §III-A describes
			c.BTBAllocPolicy = core.AllocAll
		}
		return c
	}
	configs := []core.Config{
		noFDP(withPrefetcher(core.DefaultConfig(), "base", "")),
		mk("inst-btb-8k+thr", false, 8192),
		mk("bb-btb-8k+ghr", true, 8192),
		mk("bb-btb-4k+ghr (iso-storage)", true, 4096),
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Extension: BTB organization (speedup over no-FDP baseline)",
		"config", "speedup", "branch MPKI", "fixup flushes/KI")
	for _, cfg := range configs[1:] {
		s := sets[cfg.Name]
		var flushes, insts uint64
		for _, r := range s.Runs {
			flushes += r.HistFixupFlushes
			insts += r.Instructions
		}
		t.AddRow(cfg.Name, speedupPct(s.GeoMeanSpeedup(baseSet)),
			s.MeanBranchMPKI(), 1000*float64(flushes)/float64(insts))
	}
	return &Result{
		ID: "ext-bbbtb", Title: "Instruction BTB vs basic-block BTB",
		Tables: []*stats.Table{t},
		Notes: []string{
			"the BB-BTB detects not-taken branches on covered blocks (few fixups) but",
			"spends entries on never-taken branches and costs ~2x storage per entry —",
			"the §III-A argument for taken-only instruction BTBs with target history",
		},
	}, nil
}

// ExtDataModel re-checks the headline result under the cache-driven
// data-side backend (Config.DataModel) instead of the default stochastic
// stalls: frontend conclusions must not depend on the backend abstraction.
func ExtDataModel(opts Options) (*Result, error) {
	withData := func(c core.Config, name string, foot int) core.Config {
		c.Name = name
		c.DataModel = true
		c.DataFootprint = foot
		return c
	}
	const mb = 1024 * 1024
	configs := []core.Config{
		withData(core.BaselineConfig(), "base-8mb", 8*mb),
		withData(core.DefaultConfig(), "fdp-8mb", 8*mb),
		withData(core.BaselineConfig(), "base-64mb", 64*mb),
		withData(core.DefaultConfig(), "fdp-64mb", 64*mb),
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: FDP speedup under the cache-driven data-side model",
		"data footprint", "baseline IPC-ish", "FDP speedup")
	for _, foot := range []string{"8mb", "64mb"} {
		base := sets["base-"+foot]
		fdp := sets["fdp-"+foot]
		var ipcSum float64
		for _, r := range base.Runs {
			ipcSum += r.IPC()
		}
		t.AddRow(foot, ipcSum/float64(len(base.Runs)), speedupPct(fdp.GeoMeanSpeedup(base)))
	}
	return &Result{
		ID: "ext-data", Title: "Backend-model robustness",
		Tables: []*stats.Table{t},
		Notes: []string{
			"the FDP benefit shrinks as data stalls dominate (Amdahl) but stays",
			"clearly positive — the frontend conclusions are backend-robust",
		},
	}, nil
}
