package cache

import "testing"

func smallHierarchy() *Hierarchy {
	return NewHierarchy(4*LineBytes, 2, 16*LineBytes, 4, 64*LineBytes, 4, 4,
		Latencies{L2: 10, LLC: 30, Mem: 100})
}

func TestFillLatencyLevels(t *testing.T) {
	h := smallHierarchy()
	// Cold: miss everywhere -> L2+LLC+Mem.
	done, ok := h.RequestFill(1, false, 0)
	if !ok || done != 140 {
		t.Fatalf("cold fill done=%d ok=%v, want 140", done, ok)
	}
	var fills []Fill
	fills = h.Advance(140, fills)
	if len(fills) != 1 || fills[0].Line != 1 {
		t.Fatalf("Advance returned %v", fills)
	}
	if !h.L1I.Peek(1) {
		t.Error("line not in L1I after completion")
	}
	if h.MemAccesses != 1 {
		t.Errorf("MemAccesses = %d", h.MemAccesses)
	}

	// Evict from L1I but line remains in L2: L2-latency fill.
	h.L1I.Reset()
	done, ok = h.RequestFill(1, false, 200)
	if !ok || done != 210 {
		t.Errorf("L2 hit fill done=%d, want 210", done)
	}
}

func TestLLCHitLatency(t *testing.T) {
	h := smallHierarchy()
	// Pre-install into LLC only.
	h.LLC.Fill(5, false)
	done, _ := h.RequestFill(5, false, 0)
	if done != 40 { // L2 + LLC
		t.Errorf("LLC-hit fill done=%d, want 40", done)
	}
	// The walk promotes the line into L2.
	if !h.L2.Peek(5) {
		t.Error("line not promoted to L2")
	}
}

func TestMergeDuplicateFills(t *testing.T) {
	h := smallHierarchy()
	d1, ok1 := h.RequestFill(2, true, 0)
	d2, ok2 := h.RequestFill(2, false, 3) // demand merges into prefetch
	if !ok1 || !ok2 || d1 != d2 {
		t.Fatalf("merge failed: %d/%v %d/%v", d1, ok1, d2, ok2)
	}
	if h.InFlight() != 1 {
		t.Errorf("InFlight = %d", h.InFlight())
	}
	var fills []Fill
	fills = h.Advance(d1, fills)
	if len(fills) != 1 {
		t.Fatalf("fills = %v", fills)
	}
	if fills[0].Prefetch {
		t.Error("merged fill still marked prefetch")
	}
	if fills[0].Demanded != 3 {
		t.Errorf("Demanded = %d, want 3", fills[0].Demanded)
	}
}

func TestMSHRLimit(t *testing.T) {
	h := smallHierarchy() // 4 MSHRs
	for i := uint64(0); i < 4; i++ {
		if _, ok := h.RequestFill(i, false, 0); !ok {
			t.Fatalf("fill %d rejected", i)
		}
	}
	if _, ok := h.RequestFill(99, false, 0); ok {
		t.Error("5th fill accepted with 4 MSHRs")
	}
	if h.MSHRFull != 1 {
		t.Errorf("MSHRFull = %d", h.MSHRFull)
	}
	// Merging does not need a free MSHR.
	if _, ok := h.RequestFill(2, false, 1); !ok {
		t.Error("merge rejected when MSHRs full")
	}
}

func TestPending(t *testing.T) {
	h := smallHierarchy()
	if _, p := h.Pending(7); p {
		t.Error("Pending on idle hierarchy")
	}
	done, _ := h.RequestFill(7, false, 0)
	got, p := h.Pending(7)
	if !p || got != done {
		t.Errorf("Pending = %d,%v want %d,true", got, p, done)
	}
	h.Advance(done, nil)
	if _, p := h.Pending(7); p {
		t.Error("Pending after completion")
	}
}

func TestAdvanceOrderAndPartial(t *testing.T) {
	h := smallHierarchy()
	h.L2.Fill(1, false) // 10-cycle fill
	h.RequestFill(1, false, 0)
	h.RequestFill(2, false, 0) // cold, 140 cycles
	var fills []Fill
	fills = h.Advance(10, fills)
	if len(fills) != 1 || fills[0].Line != 1 {
		t.Fatalf("early Advance returned %v", fills)
	}
	if h.InFlight() != 1 {
		t.Errorf("InFlight = %d", h.InFlight())
	}
	fills = h.Advance(140, fills[:0])
	if len(fills) != 1 || fills[0].Line != 2 {
		t.Fatalf("late Advance returned %v", fills)
	}
}

func TestPrefetchFillMarksL1I(t *testing.T) {
	h := smallHierarchy()
	done, _ := h.RequestFill(3, true, 0)
	h.Advance(done, nil)
	// Demand probe of a prefetched line counts a useful prefetch.
	h.L1I.Probe(3)
	if h.L1I.PrefHits != 1 {
		t.Errorf("PrefHits = %d", h.L1I.PrefHits)
	}
	if h.PrefetchFills != 1 || h.DemandFills != 0 {
		t.Errorf("fills: pref=%d demand=%d", h.PrefetchFills, h.DemandFills)
	}
}

func TestHierarchyResets(t *testing.T) {
	h := smallHierarchy()
	h.RequestFill(1, false, 0)
	h.ResetStats()
	if h.DemandFills != 0 {
		t.Error("ResetStats left DemandFills")
	}
	if h.InFlight() != 1 {
		t.Error("ResetStats dropped in-flight fill")
	}
	h.Reset()
	if h.InFlight() != 0 {
		t.Error("Reset kept in-flight fill")
	}
	if h.L1I.Peek(1) {
		t.Error("Reset kept L1I contents")
	}
}

func TestDefaultHierarchy(t *testing.T) {
	h := DefaultHierarchy()
	if h.L1I.SizeBytes() != 32*1024 || h.L1I.Ways() != 8 {
		t.Errorf("L1I geometry %d/%d", h.L1I.SizeBytes(), h.L1I.Ways())
	}
	if h.L2.SizeBytes() != 1024*1024 {
		t.Errorf("L2 size %d", h.L2.SizeBytes())
	}
	if h.LLC.SizeBytes() != 8*1024*1024 {
		t.Errorf("LLC size %d", h.LLC.SizeBytes())
	}
	lat := DefaultLatencies()
	if lat.L2 == 0 || lat.LLC <= lat.L2 || lat.Mem <= lat.LLC {
		t.Errorf("latencies not monotone: %+v", lat)
	}
}
