package core

import (
	"testing"

	"fdp/internal/stats"
	"fdp/internal/synth"
)

func testWorkload() *synth.Workload {
	p := synth.SpecParams(0)
	p.Name = "core-test"
	p.Funcs = 120
	return synth.MustGenerate(p, "spec", 0xC0DE)
}

var sharedWL = testWorkload()

func mustRun(t *testing.T, cfg Config, warmup, measure uint64) *stats.Run {
	t.Helper()
	r, err := Simulate(cfg, sharedWL.NewStream(), sharedWL.Name, warmup, measure)
	if err != nil {
		t.Fatalf("Simulate(%s): %v", cfg.Name, err)
	}
	return r
}

func TestBaselineRuns(t *testing.T) {
	r := mustRun(t, BaselineConfig(), 20_000, 100_000)
	if r.Instructions < 100_000 || r.Instructions > 100_000+uint64(BaselineConfig().DecodeWidth) {
		t.Errorf("Instructions = %d", r.Instructions)
	}
	if r.IPC() <= 0 || r.IPC() > float64(DefaultConfig().DecodeWidth) {
		t.Errorf("IPC = %v out of range", r.IPC())
	}
	if r.Branches == 0 || r.L1IAccesses == 0 {
		t.Errorf("no branches (%d) or accesses (%d) recorded", r.Branches, r.L1IAccesses)
	}
}

func TestFDPRuns(t *testing.T) {
	r := mustRun(t, DefaultConfig(), 20_000, 100_000)
	if r.Instructions < 100_000 || r.Instructions > 100_000+uint64(DefaultConfig().DecodeWidth) {
		t.Errorf("Instructions = %d", r.Instructions)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
}

// The headline mechanism: FDP (24-entry FTQ) must beat the no-runahead
// baseline (2-entry FTQ) on a frontend-bound workload.
func TestFDPBeatsBaseline(t *testing.T) {
	base := mustRun(t, BaselineConfig(), 50_000, 300_000)
	fdp := mustRun(t, DefaultConfig(), 50_000, 300_000)
	sp := fdp.Speedup(base)
	if sp < 1.02 {
		t.Errorf("FDP speedup = %.3f, want > 1.02 (base IPC %.3f, fdp IPC %.3f, base L1I MPKI %.1f)",
			sp, base.IPC(), fdp.IPC(), base.L1IMPKI())
	}
	// FDP must reduce starvation.
	if fdp.StarvationPKI() >= base.StarvationPKI() {
		t.Errorf("starvation not reduced: %.1f -> %.1f", base.StarvationPKI(), fdp.StarvationPKI())
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, DefaultConfig(), 10_000, 50_000)
	b := mustRun(t, DefaultConfig(), 10_000, 50_000)
	if a.Cycles != b.Cycles || a.Mispredictions != b.Mispredictions || a.L1IMisses != b.L1IMisses {
		t.Errorf("nondeterministic: cycles %d/%d mispred %d/%d misses %d/%d",
			a.Cycles, b.Cycles, a.Mispredictions, b.Mispredictions, a.L1IMisses, b.L1IMisses)
	}
}

func TestConfigValidationAtNew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FTQEntries = 0
	if _, err := New(cfg, sharedWL.NewStream()); err == nil {
		t.Error("New accepted invalid config")
	}
	cfg = DefaultConfig()
	cfg.Dir = "nope"
	if _, err := New(cfg, sharedWL.NewStream()); err == nil {
		t.Error("New accepted unknown predictor")
	}
	cfg = DefaultConfig()
	cfg.Prefetcher = "nope"
	if _, err := New(cfg, sharedWL.NewStream()); err == nil {
		t.Error("New accepted unknown prefetcher")
	}
}

func TestPerfectConfigsRun(t *testing.T) {
	for _, mut := range []struct {
		name string
		mut  func(*Config)
	}{
		{"perfect-btb", func(c *Config) { c.PerfectBTB = true }},
		{"perfect-dir", func(c *Config) { c.Dir = DirPerfect }},
		{"perfect-all", func(c *Config) { c.Dir = DirPerfect; c.PerfectBTB = true; c.PerfectIndirect = true }},
		{"perfect-prefetch", func(c *Config) { c.PerfectPrefetch = true }},
	} {
		cfg := DefaultConfig()
		cfg.Name = mut.name
		mut.mut(&cfg)
		r := mustRun(t, cfg, 10_000, 60_000)
		if r.IPC() <= 0 {
			t.Errorf("%s: IPC = %v", mut.name, r.IPC())
		}
	}
}

func TestHistoryPoliciesRun(t *testing.T) {
	for _, p := range []HistPolicy{HistTHR, HistGHRNoFix, HistGHRFix, HistIdeal} {
		for _, alloc := range []BTBAlloc{AllocTakenOnly, AllocAll} {
			cfg := DefaultConfig()
			cfg.Name = p.String() + "/" + alloc.String()
			cfg.HistPolicy = p
			cfg.BTBAllocPolicy = alloc
			r := mustRun(t, cfg, 10_000, 60_000)
			if r.IPC() <= 0 {
				t.Errorf("%s: IPC = %v", cfg.Name, r.IPC())
			}
		}
	}
}

func TestPFCReducesMispredictsWithSmallBTB(t *testing.T) {
	off := DefaultConfig()
	off.Name = "pfc-off"
	off.BTBEntries = 1024
	off.PFC = false
	on := off
	on.Name = "pfc-on"
	on.PFC = true
	roff := mustRun(t, off, 50_000, 300_000)
	ron := mustRun(t, on, 50_000, 300_000)
	if ron.PFCResteers == 0 {
		t.Fatal("PFC never fired with a 1K BTB")
	}
	if ron.Mispredictions >= roff.Mispredictions {
		t.Errorf("PFC did not reduce mispredictions: %d -> %d (resteers %d)",
			roff.Mispredictions, ron.Mispredictions, ron.PFCResteers)
	}
	// On this small workload the IPC effect can be in the noise; PFC
	// must at least not hurt materially (the misprediction reduction is
	// the load-bearing claim, checked above).
	if ron.IPC() < 0.99*roff.IPC() {
		t.Errorf("PFC hurt: IPC %.3f -> %.3f", roff.IPC(), ron.IPC())
	}
}

func TestGHRFixCausesFlushes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistPolicy = HistGHRFix
	cfg.BTBAllocPolicy = AllocTakenOnly // GHR2: fixups frequent
	cfg.PFC = false
	r := mustRun(t, cfg, 20_000, 100_000)
	if r.HistFixupFlushes == 0 {
		t.Error("GHR-fix policy produced no fixup flushes")
	}
}

func TestPrefetchersRun(t *testing.T) {
	for _, name := range []string{"nl1", "fnl+mma", "djolt", "eip-128kb", "eip-27kb", "sn4l+dis", "rdip"} {
		cfg := BaselineConfig()
		cfg.Name = name
		cfg.Prefetcher = name
		r := mustRun(t, cfg, 10_000, 60_000)
		if r.PrefetchIssued == 0 {
			t.Errorf("%s issued no prefetches", name)
		}
		if r.IPC() <= 0 {
			t.Errorf("%s: IPC = %v", name, r.IPC())
		}
	}
}

func TestNL1HelpsBaseline(t *testing.T) {
	base := mustRun(t, BaselineConfig(), 50_000, 300_000)
	cfg := BaselineConfig()
	cfg.Name = "nl1"
	cfg.Prefetcher = "nl1"
	nl1 := mustRun(t, cfg, 50_000, 300_000)
	if nl1.Speedup(base) < 1.0 {
		t.Errorf("NL1 slowed the baseline down: %.3f", nl1.Speedup(base))
	}
}

func TestBTBPrefetchRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 2048
	cfg.BTBPrefetch = true
	cfg.Prefetcher = "sn4l+dis"
	r := mustRun(t, cfg, 10_000, 60_000)
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
}

func TestPerfectPrefetchNeverStallsOnMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerfectPrefetch = true
	r := mustRun(t, cfg, 20_000, 100_000)
	if r.MissFullyExposed != 0 || r.MissPartiallyExposed != 0 {
		t.Errorf("perfect prefetch exposed misses: %d/%d", r.MissFullyExposed, r.MissPartiallyExposed)
	}
}

func TestStatsConsistency(t *testing.T) {
	r := mustRun(t, DefaultConfig(), 20_000, 200_000)
	if r.TakenBranches > r.Branches {
		t.Error("taken > branches")
	}
	if r.CondBranches > r.Branches {
		t.Error("cond > branches")
	}
	if r.Mispredictions > r.Branches {
		t.Error("more mispredictions than branches")
	}
	if r.BTBHits > r.BTBLookups {
		t.Error("BTB hits > lookups")
	}
	if r.L1IMisses > r.L1IAccesses {
		t.Error("L1I misses > accesses")
	}
	if r.L1ITagProbes < r.L1IAccesses {
		t.Error("tag probes < demand accesses")
	}
	total := r.MissFullyExposed + r.MissPartiallyExposed + r.MissCovered
	if total > r.L1IMisses {
		t.Errorf("classified %d misses out of %d", total, r.L1IMisses)
	}
}

func TestStepAndAccessors(t *testing.T) {
	c, err := New(DefaultConfig(), sharedWL.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	c.Step(1000)
	if c.Now() != 1000 {
		t.Errorf("Now = %d", c.Now())
	}
	if c.Retired() == 0 {
		t.Error("nothing retired in 1000 cycles")
	}
	if c.Stats() == nil {
		t.Error("nil stats")
	}
	if c.Prefetcher() != nil {
		t.Error("unexpected prefetcher on default config")
	}
}

func BenchmarkCoreCycle(b *testing.B) {
	c, err := New(DefaultConfig(), sharedWL.NewStream())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	c.Step(b.N)
	b.ReportMetric(float64(c.Retired())/float64(b.N), "inst/cycle")
}
