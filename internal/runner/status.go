package runner

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
)

// Status is the live progress view of an Execute call, built for
// concurrent readers (the HTTP monitor) while workers update it. The obs
// registry is deliberately NOT used here: it is single-goroutine by
// contract. Counters are plain atomics that any goroutine may read
// mid-run; the per-job table (labels, attempts, heartbeats) is a small
// mutex-guarded map updated only at attempt boundaries, never from the
// cycle loop. A nil *Status disables all updates.
type Status struct {
	// Specs is the total number of specs handed to Execute.
	Specs atomic.Int64
	// Started counts jobs a worker has begun (cache hits included);
	// Done counts jobs that finished, successfully or not.
	Started atomic.Int64
	Done    atomic.Int64
	// Running is the instantaneous number of in-flight jobs.
	Running atomic.Int64
	// CacheHits / CacheMisses mirror the runner_cache_* counters.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Canceled counts jobs abandoned by first-error or caller
	// cancellation; Panics counts recovered job panics.
	Canceled atomic.Int64
	Panics   atomic.Int64
	// Retries counts transient-failure re-attempts; Watchdog counts
	// watchdog cancellations of hung jobs; Quarantined counts terminal
	// failures contained under keep-going; CacheQuarantined counts
	// corrupt disk cache entries set aside as *.corrupt.
	Retries          atomic.Int64
	Watchdog         atomic.Int64
	Quarantined      atomic.Int64
	CacheQuarantined atomic.Int64
	// CheckpointHits / CheckpointMisses / CheckpointRestores mirror the
	// runner_checkpoint_* counters: warmups served from a checkpoint,
	// checkpoints built cold, and runs that measured from a restored
	// snapshot.
	CheckpointHits     atomic.Int64
	CheckpointMisses   atomic.Int64
	CheckpointRestores atomic.Int64
	// BackendFallbacks counts attempts the distributed backend declined
	// (every worker lost) that re-ran on the local in-process path.
	BackendFallbacks atomic.Int64

	mu   sync.Mutex
	jobs map[int]*jobStatus

	// queueDepth mirrors the runner_queue_depth histogram under Status's
	// own lock. The obs registry handed to the scheduler is locked only
	// on the write side (schedMetrics), so the monitor must never read it
	// mid-run; this mirror is the concurrent-read-safe copy the /metrics
	// quantile summary is served from.
	qmu        sync.Mutex
	queueDepth obs.Histogram
}

// jobStatus is the live view of one in-flight attempt.
type jobStatus struct {
	label   string
	attempt int
	started time.Time
	hb      *core.Heartbeat
}

// StatusSnapshot is the JSON shape served on the monitor's /progress
// endpoint: one consistent-enough point-in-time read of every field.
type StatusSnapshot struct {
	Specs            int64 `json:"specs"`
	Started          int64 `json:"started"`
	Done             int64 `json:"done"`
	Running          int64 `json:"running"`
	Queued           int64 `json:"queued"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	Canceled         int64 `json:"canceled"`
	Panics           int64 `json:"panics"`
	Retries          int64 `json:"retries"`
	Watchdog         int64 `json:"watchdog_fired"`
	Quarantined      int64 `json:"quarantined"`
	CacheQuarantined int64 `json:"cache_quarantined"`
	// Checkpoint counters are present whenever checkpointing is enabled
	// (zero otherwise): a sweep in good shape shows one miss (the build)
	// and hits for every other job sharing the warmup.
	CheckpointHits     int64 `json:"checkpoint_hits"`
	CheckpointMisses   int64 `json:"checkpoint_misses"`
	CheckpointRestores int64 `json:"checkpoint_restores"`
	// BackendFallbacks counts attempts degraded from the distributed
	// backend to local execution (nonzero means the fleet was lost at
	// some point but the campaign kept producing results).
	BackendFallbacks int64 `json:"backend_fallbacks,omitempty"`
	// Jobs lists the in-flight attempts with their last-heartbeat age —
	// a stalling job shows up as a growing last_beat_ms before the
	// watchdog fires.
	Jobs []JobSnapshot `json:"jobs,omitempty"`
}

// JobSnapshot is one in-flight attempt on /progress.
type JobSnapshot struct {
	// Index is the spec index; Job is the "config/workload" label.
	Index int    `json:"index"`
	Job   string `json:"job"`
	// Attempt is 1 for the first execution, +1 per retry.
	Attempt int `json:"attempt"`
	// RunningMS is wall time since the attempt started; LastBeatMS is
	// the age of the newest heartbeat (-1 before the first beat);
	// Cycles is the simulated cycle it reported.
	RunningMS  int64  `json:"running_ms"`
	LastBeatMS int64  `json:"last_beat_ms"`
	Cycles     uint64 `json:"cycles"`
}

// Snapshot reads the current values. Fields are read independently, so a
// snapshot taken mid-update may be off by a job — fine for monitoring.
func (s *Status) Snapshot() StatusSnapshot {
	if s == nil {
		return StatusSnapshot{}
	}
	snap := StatusSnapshot{
		Specs:            s.Specs.Load(),
		Started:          s.Started.Load(),
		Done:             s.Done.Load(),
		Running:          s.Running.Load(),
		CacheHits:        s.CacheHits.Load(),
		CacheMisses:      s.CacheMisses.Load(),
		Canceled:         s.Canceled.Load(),
		Panics:           s.Panics.Load(),
		Retries:          s.Retries.Load(),
		Watchdog:         s.Watchdog.Load(),
		Quarantined:      s.Quarantined.Load(),
		CacheQuarantined: s.CacheQuarantined.Load(),

		CheckpointHits:     s.CheckpointHits.Load(),
		CheckpointMisses:   s.CheckpointMisses.Load(),
		CheckpointRestores: s.CheckpointRestores.Load(),
		BackendFallbacks:   s.BackendFallbacks.Load(),
	}
	if q := snap.Specs - snap.Started; q > 0 {
		snap.Queued = q
	}
	now := time.Now()
	s.mu.Lock()
	for i, js := range s.jobs {
		j := JobSnapshot{
			Index:      i,
			Job:        js.label,
			Attempt:    js.attempt,
			RunningMS:  now.Sub(js.started).Milliseconds(),
			LastBeatMS: -1,
			Cycles:     js.hb.Cycles(),
		}
		if lb := js.hb.LastBeat(); !lb.IsZero() {
			j.LastBeatMS = now.Sub(lb).Milliseconds()
		}
		snap.Jobs = append(snap.Jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].Index < snap.Jobs[b].Index })
	return snap
}

// nil-safe increment helpers used from the scheduler hot path.

func (s *Status) addSpecs(n int64) {
	if s != nil {
		s.Specs.Add(n)
	}
}

func (s *Status) jobStarted() {
	if s != nil {
		s.Started.Add(1)
		s.Running.Add(1)
	}
}

func (s *Status) jobDone() {
	if s != nil {
		s.Done.Add(1)
		s.Running.Add(-1)
	}
}

func (s *Status) cacheHit() {
	if s != nil {
		s.CacheHits.Add(1)
	}
}

func (s *Status) cacheMiss() {
	if s != nil {
		s.CacheMisses.Add(1)
	}
}

func (s *Status) addCanceled(n int64) {
	if s != nil && n > 0 {
		s.Canceled.Add(n)
	}
}

func (s *Status) panicked() {
	if s != nil {
		s.Panics.Add(1)
	}
}

func (s *Status) retried() {
	if s != nil {
		s.Retries.Add(1)
	}
}

func (s *Status) watchdogFired() {
	if s != nil {
		s.Watchdog.Add(1)
	}
}

func (s *Status) quarantined() {
	if s != nil {
		s.Quarantined.Add(1)
	}
}

func (s *Status) cacheQuarantined() {
	if s != nil {
		s.CacheQuarantined.Add(1)
	}
}

func (s *Status) checkpointHit() {
	if s != nil {
		s.CheckpointHits.Add(1)
	}
}

func (s *Status) checkpointMiss() {
	if s != nil {
		s.CheckpointMisses.Add(1)
	}
}

func (s *Status) checkpointRestored() {
	if s != nil {
		s.CheckpointRestores.Add(1)
	}
}

func (s *Status) backendFallback() {
	if s != nil {
		s.BackendFallbacks.Add(1)
	}
}

// ObserveQueueDepth samples the backlog at a job start. Execute calls
// this from the scheduler; it is exported, like TrackJob, so alternative
// runners can feed the same monitor.
func (s *Status) ObserveQueueDepth(d uint64) {
	if s == nil {
		return
	}
	s.qmu.Lock()
	s.queueDepth.Observe(d)
	s.qmu.Unlock()
}

// QueueDepthSnapshot returns the queue-depth histogram observed so far
// (samples taken at every job start). Safe for concurrent use and on a
// nil receiver.
func (s *Status) QueueDepthSnapshot() obs.HistogramSnapshot {
	if s == nil {
		return obs.HistogramSnapshot{}
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.queueDepth.Snapshot()
}

// TrackJob registers job i's current attempt (and its heartbeat) for
// /progress; UntrackJob removes it when the attempt ends. Execute calls
// these around every attempt; they are exported so alternative runners
// can feed the same monitor.
func (s *Status) TrackJob(i int, label string, attempt int, hb *core.Heartbeat) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.jobs == nil {
		s.jobs = make(map[int]*jobStatus)
	}
	s.jobs[i] = &jobStatus{label: label, attempt: attempt, started: time.Now(), hb: hb}
	s.mu.Unlock()
}

// UntrackJob removes job i from the in-flight table.
func (s *Status) UntrackJob(i int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.jobs, i)
	s.mu.Unlock()
}
