// Package btb implements the Branch Target Buffer: a 16-byte-indexed
// set-associative structure holding branch type and target, the allocation
// policies the paper compares (taken-only vs all-branch, Table V), and the
// perfect-BTB oracle used in the limit studies.
package btb

import "fdp/internal/program"

// TargetBuffer is the prediction pipeline's view of a BTB. Lookup is
// consulted for every instruction address the prediction pipe scans;
// Insert/UpdateTarget train it at branch resolution (and, for BTB
// prefetching, at pre-decode).
type TargetBuffer interface {
	// Lookup returns the stored branch type and target for pc. ok is
	// false when pc misses (the branch is undetected).
	Lookup(pc uint64) (t program.InstType, target uint64, ok bool)
	// Insert installs or refreshes the entry for pc.
	Insert(pc uint64, t program.InstType, target uint64)
	// Lookups and Hits return access statistics.
	Lookups() uint64
	Hits() uint64
	// ResetStats clears statistics, keeping contents.
	ResetStats()
	// Name identifies the implementation for reports.
	Name() string
}

// blockShift implements the paper's 16B-indexed BTB: all branches in the
// same 16-byte block map to the same set.
const blockShift = 4

// meta is the payload of one BTB slot. The tag itself lives in a separate
// packed array so that the way-search — run for every address the
// prediction pipe scans — touches only a handful of contiguous words; the
// payload line is loaded only on the (far rarer) hit.
type meta struct {
	target uint64
	lru    uint64
	typ    program.InstType
}

// BTB is a set-associative branch target buffer with true-LRU replacement.
type BTB struct {
	sets    int
	ways    int
	setMask uint64
	// tags holds (pc>>2)<<1 | 1 for valid slots and 0 for invalid ones, so
	// presence and tag match collapse into one comparison.
	tags     []uint64
	meta     []meta
	lruClock uint64

	lookups uint64
	hits    uint64
	// Inserts and Replacements are exported counters for studies of BTB
	// pollution (Fig. 10).
	Inserts      uint64
	Replacements uint64
}

// New builds a BTB with the given total entry count and associativity.
// entries must be a power-of-two multiple of ways.
func New(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("btb: bad geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("btb: set count not a power of two")
	}
	return &BTB{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
		meta:    make([]meta, entries),
	}
}

// Entries returns the total capacity.
func (b *BTB) Entries() int { return b.sets * b.ways }

// Name implements TargetBuffer.
func (b *BTB) Name() string { return "btb" }

// key packs a pc into its valid-slot tag encoding.
func key(pc uint64) uint64 { return pc>>2<<1 | 1 }

// setBase returns the first slot index of pc's set.
func (b *BTB) setBase(pc uint64) int {
	return int((pc>>blockShift)&b.setMask) * b.ways
}

// Lookup implements TargetBuffer.
func (b *BTB) Lookup(pc uint64) (program.InstType, uint64, bool) {
	b.lookups++
	k := key(pc)
	base := b.setBase(pc)
	tags := b.tags[base : base+b.ways]
	for i := range tags {
		if tags[i] == k {
			b.hits++
			b.lruClock++
			m := &b.meta[base+i]
			m.lru = b.lruClock
			return m.typ, m.target, true
		}
	}
	return program.NonBranch, 0, false
}

// Peek reports whether pc is present without touching LRU or stats.
func (b *BTB) Peek(pc uint64) bool {
	k := key(pc)
	base := b.setBase(pc)
	tags := b.tags[base : base+b.ways]
	for i := range tags {
		if tags[i] == k {
			return true
		}
	}
	return false
}

// Insert implements TargetBuffer: it installs pc, replacing LRU on
// conflict, or refreshes the existing entry (updating the target, which is
// how indirect-branch targets stay current).
func (b *BTB) Insert(pc uint64, t program.InstType, target uint64) {
	k := key(pc)
	base := b.setBase(pc)
	tags := b.tags[base : base+b.ways]
	victim := 0
	for i := range tags {
		if tags[i] == k {
			m := &b.meta[base+i]
			m.typ = t
			m.target = target
			b.lruClock++
			m.lru = b.lruClock
			return
		}
		if tags[i] == 0 {
			victim = i
		} else if tags[victim] != 0 && b.meta[base+i].lru < b.meta[base+victim].lru {
			victim = i
		}
	}
	b.Inserts++
	if tags[victim] != 0 {
		b.Replacements++
	}
	b.lruClock++
	tags[victim] = k
	b.meta[base+victim] = meta{typ: t, target: target, lru: b.lruClock}
}

// InsertCold installs a *prefetched* branch at the LRU position of its
// set: it only survives if a real lookup promotes it, bounding the BTB
// pollution that blind pre-decode installs cause (§VI-E). An existing
// entry just gets its target refreshed.
func (b *BTB) InsertCold(pc uint64, t program.InstType, target uint64) {
	k := key(pc)
	base := b.setBase(pc)
	tags := b.tags[base : base+b.ways]
	victim := 0
	var minLRU uint64
	for i := range tags {
		if tags[i] == k {
			m := &b.meta[base+i]
			m.typ = t
			m.target = target
			return
		}
		if tags[i] == 0 {
			// Free slot: use it, still marked old.
			tags[i] = k
			b.meta[base+i] = meta{typ: t, target: target}
			b.Inserts++
			return
		}
		if i == 0 || b.meta[base+i].lru < minLRU {
			victim = i
			minLRU = b.meta[base+i].lru
		}
	}
	b.Inserts++
	b.Replacements++
	// Replace the LRU entry but keep the slot's age, so the prefetched
	// entry is itself the next victim unless a lookup promotes it.
	tags[victim] = k
	b.meta[base+victim] = meta{typ: t, target: target, lru: minLRU}
}

// Lookups implements TargetBuffer.
func (b *BTB) Lookups() uint64 { return b.lookups }

// Hits implements TargetBuffer.
func (b *BTB) Hits() uint64 { return b.hits }

// ResetStats implements TargetBuffer.
func (b *BTB) ResetStats() { b.lookups, b.hits, b.Inserts, b.Replacements = 0, 0, 0, 0 }

// Reset clears contents and statistics.
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i] = 0
		b.meta[i] = meta{}
	}
	b.lruClock = 0
	b.ResetStats()
}

// pcTable is a small open-addressed hash table from pc to target. Programs
// have few indirect sites, so a linear-probed power-of-two table beats a
// Go map on the per-prediction lookup path: no hashing interface, no
// bucket indirection, and a fixed two-array layout.
type pcTable struct {
	keys  []uint64 // pc+1 (0 = empty slot; pc==MaxUint64 cannot occur: pcs are 4-aligned)
	vals  []uint64
	used  int
	shift uint // 64 - log2(len(keys)), for fibonacci hashing
}

func newPCTable() *pcTable {
	const initSlots = 64
	t := &pcTable{keys: make([]uint64, initSlots), vals: make([]uint64, initSlots)}
	t.shift = tableShift(initSlots)
	return t
}

func tableShift(slots int) uint {
	s := uint(64)
	for slots > 1 {
		slots >>= 1
		s--
	}
	return s
}

// slot mixes the pc into a table index (fibonacci hashing on the word-
// aligned pc, keeping the high product bits).
func (t *pcTable) slot(pc uint64) int {
	return int((pc >> 2) * 0x9E3779B97F4A7C15 >> t.shift)
}

// get returns the stored target for pc, or 0 when absent (matching the
// zero-value semantics of the map it replaces).
func (t *pcTable) get(pc uint64) uint64 {
	k := pc + 1
	for i := t.slot(pc); ; i = (i + 1) & (len(t.keys) - 1) {
		switch t.keys[i] {
		case k:
			return t.vals[i]
		case 0:
			return 0
		}
	}
}

// put stores or refreshes the target for pc, growing at 3/4 load.
func (t *pcTable) put(pc, target uint64) {
	k := pc + 1
	for i := t.slot(pc); ; i = (i + 1) & (len(t.keys) - 1) {
		switch t.keys[i] {
		case k:
			t.vals[i] = target
			return
		case 0:
			t.keys[i] = k
			t.vals[i] = target
			t.used++
			if t.used*4 > len(t.keys)*3 {
				t.grow()
			}
			return
		}
	}
}

func (t *pcTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, len(oldKeys)*2)
	t.vals = make([]uint64, len(oldVals)*2)
	t.shift = tableShift(len(t.keys))
	t.used = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.put(k-1, oldVals[i])
		}
	}
}

// Perfect is the perfect-BTB oracle (§VI-A): every branch in the program
// image is detected with its static type; direct branches return their
// static target. Indirect branches return their last observed target (what
// an infinite BTB would hold), refinable by the indirect predictor;
// returns are detected and resolved through the RAS, as in hardware.
type Perfect struct {
	img      *program.Image
	indirect *pcTable // pc -> last taken target (indirect sites)
	lookups  uint64
	hits     uint64
}

// NewPerfect wraps a program image as a perfect BTB.
func NewPerfect(img *program.Image) *Perfect {
	return &Perfect{img: img, indirect: newPCTable()}
}

// Name implements TargetBuffer.
func (p *Perfect) Name() string { return "perfect-btb" }

// Lookup implements TargetBuffer.
func (p *Perfect) Lookup(pc uint64) (program.InstType, uint64, bool) {
	p.lookups++
	si, ok := p.img.At(pc)
	if !ok || !si.Type.IsBranch() {
		return program.NonBranch, 0, false
	}
	p.hits++
	target := si.Target
	if si.Type.IsIndirect() {
		target = p.indirect.get(pc)
	}
	return si.Type, target, true
}

// Insert implements TargetBuffer: detection is already perfect, but the
// last target of indirect branches is recorded, as an infinite real BTB
// would.
func (p *Perfect) Insert(pc uint64, t program.InstType, target uint64) {
	if t.IsIndirect() {
		p.indirect.put(pc, target)
	}
}

// Lookups implements TargetBuffer.
func (p *Perfect) Lookups() uint64 { return p.lookups }

// Hits implements TargetBuffer.
func (p *Perfect) Hits() uint64 { return p.hits }

// ResetStats implements TargetBuffer.
func (p *Perfect) ResetStats() { p.lookups, p.hits = 0, 0 }
