package prefetch

import (
	"testing"

	"fdp/internal/program"
)

// collector gathers emitted prefetch candidates.
type collector struct{ lines []uint64 }

func (c *collector) emit(line uint64) { c.lines = append(c.lines, line) }

func (c *collector) has(line uint64) bool {
	for _, l := range c.lines {
		if l == line {
			return true
		}
	}
	return false
}

func (c *collector) reset() { c.lines = c.lines[:0] }

func TestBuild(t *testing.T) {
	for _, name := range []string{"", "none", "nl1", "fnl+mma", "djolt", "eip-128kb", "eip-27kb", "sn4l+dis", "rdip"} {
		p, err := Build(name)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("Build(%q) = nil", name)
		}
		if name != "" && name != "none" && p.Name() != name {
			t.Errorf("Build(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := Build("bogus"); err == nil {
		t.Error("Build(bogus) succeeded")
	}
}

func TestNoneIsInert(t *testing.T) {
	var c collector
	p := None{}
	p.OnAccess(1, false, false, c.emit)
	p.OnFill(1, c.emit)
	p.OnBranch(4, program.Call, 8, c.emit)
	if len(c.lines) != 0 {
		t.Errorf("None emitted %v", c.lines)
	}
	if p.StorageBits() != 0 {
		t.Error("None claims storage")
	}
}

func TestNL1(t *testing.T) {
	var c collector
	p := NL1{}
	p.OnAccess(100, true, false, c.emit)
	if len(c.lines) != 0 {
		t.Error("NL1 prefetched on a hit")
	}
	p.OnAccess(100, false, false, c.emit)
	if !c.has(101) {
		t.Errorf("NL1 did not prefetch next line: %v", c.lines)
	}
	if p.StorageBits() != 0 {
		t.Error("NL1 claims storage")
	}
}

func TestFNLMMALearnsSequentialFootprint(t *testing.T) {
	p := NewFNLMMA()
	var c collector
	// Train: repeated sequential walk 200,201,202,...
	for rep := 0; rep < 8; rep++ {
		for l := uint64(200); l < 210; l++ {
			p.OnAccess(l, true, false, c.emit)
		}
	}
	c.reset()
	p.OnAccess(200, true, false, c.emit)
	if !c.has(201) {
		t.Errorf("trained FNL did not emit next lines: %v", c.lines)
	}
}

func TestFNLMMAMissChain(t *testing.T) {
	p := NewFNLMMA()
	var c collector
	// Teach a recurring miss sequence A -> B -> C (discontiguous).
	seq := []uint64{1000, 5000, 9000}
	for rep := 0; rep < 4; rep++ {
		for _, l := range seq {
			p.OnAccess(l, false, false, c.emit)
		}
	}
	c.reset()
	p.OnAccess(1000, false, false, c.emit)
	if !c.has(5000) || !c.has(9000) {
		t.Errorf("MMA chain not followed: %v", c.lines)
	}
}

func TestDJOLTLearnsSignatureToMisses(t *testing.T) {
	p := NewDJOLT()
	var c collector
	// Call sequence establishing a signature, then misses under it.
	calls := []uint64{0x100, 0x200, 0x300, 0x400}
	for rep := 0; rep < 3; rep++ {
		for _, pc := range calls {
			p.OnBranch(pc, program.Call, pc+0x1000, c.emit)
		}
		p.OnAccess(7777, false, false, c.emit)
		p.OnAccess(8888, false, false, c.emit)
		// Different signature region in between.
		p.OnBranch(0x999, program.Call, 0x1999, c.emit)
	}
	c.reset()
	for _, pc := range calls {
		p.OnBranch(pc, program.Call, pc+0x1000, c.emit)
	}
	if !c.has(7777) || !c.has(8888) {
		t.Errorf("D-JOLT did not prefetch learned misses: %v", c.lines)
	}
}

func TestDJOLTIgnoresNonCallBranches(t *testing.T) {
	p := NewDJOLT()
	var c collector
	p.OnBranch(0x10, program.CondDirect, 0x20, c.emit)
	p.OnBranch(0x10, program.Jump, 0x20, c.emit)
	if len(c.lines) != 0 {
		t.Errorf("emitted on non-call branches: %v", c.lines)
	}
}

func TestEIPEntangles(t *testing.T) {
	p := NewEIP(EIP27KB())
	var c collector
	// Access source S many times, each followed (after some filler hits)
	// by a miss to D: D becomes entangled with a line near S in time.
	for rep := 0; rep < 6; rep++ {
		p.OnAccess(100, true, false, c.emit)
		for i := uint64(1); i <= 3; i++ {
			p.OnAccess(200+i, true, false, c.emit)
		}
		p.OnAccess(999, false, false, c.emit) // the miss to entangle
	}
	c.reset()
	// Re-access the candidate sources; one of them must now prefetch 999.
	p.OnAccess(100, true, false, c.emit)
	for i := uint64(1); i <= 3; i++ {
		p.OnAccess(200+i, true, false, c.emit)
	}
	if !c.has(999) {
		t.Errorf("EIP did not prefetch entangled destination: %v", c.lines)
	}
}

func TestEIPBudgets(t *testing.T) {
	big := NewEIP(EIP128KB())
	small := NewEIP(EIP27KB())
	if big.StorageBits() <= small.StorageBits() {
		t.Errorf("128KB (%d bits) not larger than 27KB (%d bits)",
			big.StorageBits(), small.StorageBits())
	}
	// Rough budget sanity: within 2x of the nominal labels.
	bigKB := float64(big.StorageBits()) / 8 / 1024
	smallKB := float64(small.StorageBits()) / 8 / 1024
	if bigKB < 96 || bigKB > 192 {
		t.Errorf("eip-128kb budget = %.0fKB, want ~128KB", bigKB)
	}
	if smallKB < 18 || smallKB > 54 {
		t.Errorf("eip-27kb budget = %.0fKB, want ~27KB", smallKB)
	}
}

func TestSN4LUsefulnessFilter(t *testing.T) {
	p := NewSN4LDis()
	var c collector
	// Train: after line 50, lines 51 and 53 are used (52, 54 are not).
	for rep := 0; rep < 4; rep++ {
		p.OnAccess(50, true, false, c.emit)
		p.OnAccess(51, true, false, c.emit)
		p.OnAccess(53, true, false, c.emit)
		p.OnAccess(90, true, false, c.emit) // break the window
		p.OnAccess(91, true, false, c.emit)
		p.OnAccess(92, true, false, c.emit)
		p.OnAccess(93, true, false, c.emit)
		p.OnAccess(94, true, false, c.emit)
	}
	c.reset()
	p.OnAccess(50, false, false, c.emit)
	if !c.has(51) || !c.has(53) {
		t.Errorf("useful next lines not prefetched: %v", c.lines)
	}
	if c.has(54) {
		t.Errorf("filter leaked unused line 54: %v", c.lines)
	}
}

func TestDisRecordsDiscontinuity(t *testing.T) {
	p := NewSN4LDis()
	var c collector
	// Miss at 100 then discontinuous miss at 500, repeatedly.
	for rep := 0; rep < 3; rep++ {
		p.OnAccess(100, false, false, c.emit)
		p.OnAccess(500, false, false, c.emit)
	}
	c.reset()
	p.OnAccess(100, false, false, c.emit)
	if !c.has(500) {
		t.Errorf("Dis did not follow discontinuity: %v", c.lines)
	}
}

func TestDisIgnoresSequentialMisses(t *testing.T) {
	p := NewSN4LDis()
	var c collector
	for rep := 0; rep < 3; rep++ {
		p.OnAccess(100, false, false, c.emit)
		p.OnAccess(102, false, false, c.emit) // within next-4: SN4L territory
	}
	c.reset()
	p.OnAccess(100, false, false, c.emit)
	// 102 may be emitted by SN4L, but the Dis table must not have recorded
	// it; after clearing SN4L's contribution we can't distinguish here, so
	// just assert no crash and bounded output.
	if len(c.lines) > 5 {
		t.Errorf("unbounded emission: %v", c.lines)
	}
}

func TestAllPrefetchersHaveSaneStorage(t *testing.T) {
	for _, name := range []string{"fnl+mma", "djolt", "eip-128kb", "eip-27kb", "sn4l+dis", "rdip"} {
		p, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		bits := p.StorageBits()
		if bits <= 0 || bits > 8*1024*1024*8 {
			t.Errorf("%s storage = %d bits", name, bits)
		}
	}
}

func TestRDIPLearnsContextMisses(t *testing.T) {
	p := NewRDIP()
	var c collector
	// Enter context (call chain), observe misses, leave, repeat.
	enter := func() {
		p.OnBranch(0x100, program.Call, 0x1000, c.emit)
		p.OnBranch(0x1100, program.Call, 0x2000, c.emit)
	}
	leave := func() {
		p.OnBranch(0x2100, program.Return, 0, c.emit)
		p.OnBranch(0x1200, program.Return, 0, c.emit)
	}
	for rep := 0; rep < 3; rep++ {
		enter()
		p.OnAccess(4242, false, false, c.emit)
		p.OnAccess(5353, false, false, c.emit)
		leave()
	}
	c.reset()
	enter()
	if !c.has(4242) || !c.has(5353) {
		t.Errorf("RDIP did not prefetch context misses: %v", c.lines)
	}
}

func TestRDIPIgnoresNonCallReturn(t *testing.T) {
	p := NewRDIP()
	var c collector
	p.OnBranch(0x10, program.CondDirect, 0x20, c.emit)
	p.OnBranch(0x10, program.IndJump, 0x20, c.emit)
	if len(c.lines) != 0 {
		t.Errorf("emitted on non-call/return: %v", c.lines)
	}
}

func TestRDIPShadowStackBounded(t *testing.T) {
	p := NewRDIP()
	var c collector
	for i := 0; i < 1000; i++ {
		p.OnBranch(uint64(i*8), program.Call, uint64(i*8+0x1000), c.emit)
	}
	if len(p.stack) > 64 {
		t.Errorf("shadow stack grew to %d", len(p.stack))
	}
	// Underflow safe.
	for i := 0; i < 2000; i++ {
		p.OnBranch(0x4, program.Return, 0, c.emit)
	}
	if p.StorageBits() <= 0 {
		t.Error("no storage accounted")
	}
	if p.Name() != "rdip" {
		t.Errorf("Name = %s", p.Name())
	}
}

func TestNoOpHooksAreSafe(t *testing.T) {
	// Every prefetcher's unused hooks must be callable no-ops.
	var c collector
	for _, name := range []string{"nl1", "fnl+mma", "djolt", "eip-27kb", "sn4l+dis", "rdip"} {
		p, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		p.OnFill(1234, c.emit)
		p.OnBranch(0x40, program.CondDirect, 0x80, c.emit)
		p.OnAccess(1, true, true, c.emit) // prefetch-hit path
	}
	if p, _ := Build("none"); p.Name() != "none" {
		t.Errorf("none Name = %s", p.Name())
	}
	if p, _ := Build(""); p.Name() != "none" {
		t.Errorf("empty Name = %s", p.Name())
	}
}

func TestDJOLTDuplicateMissNotReRecorded(t *testing.T) {
	p := NewDJOLT()
	var c collector
	p.OnBranch(0x100, program.Call, 0x1000, c.emit)
	p.OnAccess(42, false, false, c.emit)
	p.OnAccess(42, false, false, c.emit) // duplicate under same signature
	c.reset()
	p.OnBranch(0x200, program.Return, 0, c.emit)
	p.OnBranch(0x100, program.Call, 0x1000, c.emit)
	count := 0
	for _, l := range c.lines {
		if l == 42 {
			count++
		}
	}
	if count > 1 {
		t.Errorf("line 42 recorded %d times", count)
	}
}

func TestSigTableVectorEviction(t *testing.T) {
	tbl := newSigTable(16, 2) // 2-line vectors
	for l := uint64(1); l <= 5; l++ {
		tbl.record(7, l)
	}
	var c collector
	if !tbl.lookup(7, c.emit) {
		t.Fatal("lookup missed recorded signature")
	}
	if len(c.lines) != 2 {
		t.Fatalf("vector kept %d lines, cap 2", len(c.lines))
	}
	// FIFO: the most recent lines survive.
	if !c.has(4) || !c.has(5) {
		t.Errorf("vector contents %v, want [4 5]", c.lines)
	}
}

func TestEIPDoesNotEntangleSelf(t *testing.T) {
	p := NewEIP(EIP27KB())
	var c collector
	// Only ever access one line, missing each time.
	for i := 0; i < 10; i++ {
		p.OnAccess(777, false, false, c.emit)
	}
	c.reset()
	p.OnAccess(777, false, false, c.emit)
	if c.has(777) {
		t.Error("line entangled with itself")
	}
}
