package prefetch

import "fdp/internal/program"

// SN4LDis implements the prefetching half of Divide-and-Conquer (Ansari et
// al., §VI-E): SN4L (selective next-four-line, gated by a per-line
// usefulness footprint) plus Dis (a discontinuity table recording jumps
// between I-cache miss lines). The companion BTB-prefetching half lives in
// the core (it needs the BTB and the pre-decoder).
type SN4LDis struct {
	// SN4L usefulness: 4 bits per tracked line; bit i-1 set means line+i
	// was demanded soon after line.
	snTags []uint16
	snVec  []uint8
	snMask uint64

	// Dis: missLine -> next discontinuous missLine.
	disTags []uint16
	disNext []uint64
	disMask uint64

	lastMiss  uint64
	haveMiss  bool
	recent    [8]uint64 // recent demand lines for footprint training
	recentPos int
}

// NewSN4LDis builds the default-size SN4L+Dis (~30KB metadata).
func NewSN4LDis() *SN4LDis {
	const snEntries = 8192
	const disEntries = 2048
	return &SN4LDis{
		snTags:  make([]uint16, snEntries),
		snVec:   make([]uint8, snEntries),
		snMask:  snEntries - 1,
		disTags: make([]uint16, disEntries),
		disNext: make([]uint64, disEntries),
		disMask: disEntries - 1,
	}
}

// Name implements Prefetcher.
func (s *SN4LDis) Name() string { return "sn4l+dis" }

// StorageBits implements Prefetcher.
func (s *SN4LDis) StorageBits() int {
	return len(s.snTags)*(16+4) + len(s.disTags)*(16+42)
}

// OnAccess implements Prefetcher.
func (s *SN4LDis) OnAccess(line uint64, hit, _ bool, emit Emit) {
	// Train SN4L: mark line as a useful follower of any of the previous
	// four lines.
	for _, prev := range s.recent {
		if prev == 0 {
			continue
		}
		d := line - prev
		if d >= 1 && d <= 4 {
			i := prev & s.snMask
			tag := uint16(prev >> 16)
			if s.snTags[i] != tag {
				s.snTags[i] = tag
				s.snVec[i] = 0
			}
			s.snVec[i] |= 1 << (d - 1)
		}
	}
	s.recent[s.recentPos] = line
	s.recentPos = (s.recentPos + 1) % len(s.recent)

	// SN4L issue: previously-useful lines among the next four.
	i := line & s.snMask
	if s.snTags[i] == uint16(line>>16) {
		vec := s.snVec[i]
		for d := uint64(1); d <= 4; d++ {
			if vec>>(d-1)&1 == 1 {
				emit(line + d)
			}
		}
	}

	// Dis issue: follow the recorded discontinuity from this line.
	di := line & s.disMask
	if s.disTags[di] == uint16(line>>11) {
		emit(s.disNext[di])
	}

	if !hit {
		s.onMiss(line)
	}
}

func (s *SN4LDis) onMiss(line uint64) {
	// Record discontinuous miss-to-miss jumps.
	if s.haveMiss {
		d := line - s.lastMiss
		if d == 0 {
			return
		}
		if d > 4 || line < s.lastMiss {
			i := s.lastMiss & s.disMask
			s.disTags[i] = uint16(s.lastMiss >> 11)
			s.disNext[i] = line
		}
	}
	s.lastMiss = line
	s.haveMiss = true
}

// OnFill implements Prefetcher.
func (s *SN4LDis) OnFill(uint64, Emit) {}

// OnBranch implements Prefetcher.
func (s *SN4LDis) OnBranch(uint64, program.InstType, uint64, Emit) {}
