package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"testing"
)

// validTraceBytes builds a small, well-formed trace file.
func validTraceBytes(t *testing.T, records int) []byte {
	t.Helper()
	w := testWorkload()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{Name: w.Name, Class: w.Class, Seed: w.Seed, Entry: w.Entry()}, w.Image())
	if err != nil {
		t.Fatal(err)
	}
	s := w.NewStream()
	for i := 0; i < records; i++ {
		tw.Record(s.Next())
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// gzipRaw gzips an arbitrary payload, bypassing the Writer — for
// corrupting the *decompressed* framing rather than the gzip envelope.
func gzipRaw(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// gunzip decompresses a valid trace so tests can corrupt its plaintext.
func gunzip(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadCorruptInputsClassified: every way a trace file can be damaged
// must fail with an error wrapping ErrCorrupt — the runner's taxonomy
// depends on the classification, and none may panic.
func TestReadCorruptInputsClassified(t *testing.T) {
	valid := validTraceBytes(t, 200)
	plain := gunzip(t, valid)

	corruptPlain := func(name string, mutate func(b []byte) []byte) struct {
		name string
		data []byte
	} {
		return struct {
			name string
			data []byte
		}{name, gzipRaw(t, mutate(append([]byte(nil), plain...)))}
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not gzip", []byte("definitely not a gzip stream")},
		{"gzip of nothing", gzipRaw(t, nil)},
		{"truncated gzip envelope", valid[:len(valid)/2]},
		{"gzip checksum damage", append(append([]byte(nil), valid[:len(valid)-4]...), 0, 0, 0, 0)},
		corruptPlain("bad magic", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}),
		corruptPlain("truncated header", func(b []byte) []byte {
			return b[:len(magic)+2]
		}),
		corruptPlain("truncated image", func(b []byte) []byte {
			return b[:len(b)*2/3]
		}),
		corruptPlain("no dynamic records", func(b []byte) []byte {
			// Cutting right after the header+image: found by re-reading
			// until decode starts — approximate by keeping just the magic,
			// which fails earlier but still classifies.
			return b[:len(magic)]
		}),
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

// TestReadCorruptRecordSection: damage inside the dynamic-record section
// (the most likely torn-write victim) is classified too.
func TestReadCorruptRecordSection(t *testing.T) {
	plain := gunzip(t, validTraceBytes(t, 200))
	// Appending a lone explicit-NextPC flag with a truncated varint tears
	// the final record.
	torn := append(append([]byte(nil), plain...), flagExplicit, 0x80)
	if _, err := Read(bytes.NewReader(gzipRaw(t, torn))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn record section: %v, want ErrCorrupt", err)
	}
	// A zero flags byte is no valid record shape.
	bad := append(append([]byte(nil), plain...), 0x00)
	if _, err := Read(bytes.NewReader(gzipRaw(t, bad))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad record flags: %v, want ErrCorrupt", err)
	}
}

// TestReadValidStillAccepted: the classification audit must not have
// tightened acceptance — a clean trace still round-trips.
func TestReadValidStillAccepted(t *testing.T) {
	tr, err := Read(bytes.NewReader(validTraceBytes(t, 200)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
}
