package dist

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/runner"
	"fdp/internal/synth"
)

// smallSpecs builds a tiny config x workload grid (mirrors the runner's
// own test grid).
func smallSpecs(t *testing.T) []runner.Spec {
	t.Helper()
	var specs []runner.Spec
	for _, cfgName := range []string{"fdp", "baseline"} {
		cfg := core.DefaultConfig()
		if cfgName == "baseline" {
			cfg = core.BaselineConfig()
		}
		for _, wl := range []string{"server_a", "client_a"} {
			w := synth.ByName(wl)
			if w == nil {
				t.Fatalf("unknown workload %s", wl)
			}
			specs = append(specs, runner.WorkloadSpec(cfg, w, 5_000, 20_000))
		}
	}
	return specs
}

func startWorker(t *testing.T, opts WorkerOptions) (*Worker, *httptest.Server) {
	t.Helper()
	wk := NewWorker(opts)
	srv := httptest.NewServer(wk.Handler())
	t.Cleanup(srv.Close)
	return wk, srv
}

func newCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// canonJSON renders v as canonical JSON (marshal → generic unmarshal →
// marshal), erasing the struct-vs-map difference a wire round trip
// introduces in interface-typed fields.
func canonJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var g any
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return string(b2)
}

// TestDistributedMatchesLocal: a clean two-worker fleet produces
// byte-identical runs and manifests to plain local execution — the
// protocol is an execution detail, not a semantics change.
func TestDistributedMatchesLocal(t *testing.T) {
	specs := smallSpecs(t)
	local, err := runner.Execute(context.Background(), specs, runner.Options{Parallel: 2, Observe: true})
	if err != nil {
		t.Fatal(err)
	}

	_, s1 := startWorker(t, WorkerOptions{Slots: 2})
	_, s2 := startWorker(t, WorkerOptions{Slots: 2})
	coord := newCoord(t, Config{Workers: []string{s1.URL, s2.URL}})
	if err := coord.Check(context.Background()); err != nil {
		t.Fatal(err)
	}
	remote, err := runner.Execute(context.Background(), specs, runner.Options{
		Parallel: 2, Observe: true, Backend: coord,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if canonJSON(t, remote[i].Run) != canonJSON(t, local[i].Run) {
			t.Fatalf("spec %d: distributed run diverged from local", i)
		}
		if canonJSON(t, remote[i].Manifest) != canonJSON(t, local[i].Manifest) {
			t.Fatalf("spec %d: distributed manifest diverged from local", i)
		}
	}
	fs := coord.Fleet()
	if fs.Leases < int64(len(specs)) {
		t.Fatalf("expected at least %d leases, saw %d", len(specs), fs.Leases)
	}
	if fs.Expired != 0 || fs.Corrupt != 0 || fs.WorkersLost != 0 {
		t.Fatalf("clean fleet reported faults: %+v", fs)
	}
}

// TestHungWorkerLeaseExpiryReassigns: a worker that hangs mid-lease
// keeps its heartbeat stream alive but shows no cycle progress; the
// coordinator must expire the lease and land the job on the healthy
// worker, with the result identical to a local run.
func TestHungWorkerLeaseExpiryReassigns(t *testing.T) {
	spec := smallSpecs(t)[:1]
	local, err := runner.Execute(context.Background(), spec, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The hung worker's fault hook blocks every lease until canceled —
	// the stuck-simulation model.
	_, hungSrv := startWorker(t, WorkerOptions{
		FaultHook: func(ctx context.Context, job, attempt int) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	_, okSrv := startWorker(t, WorkerOptions{})
	coord := newCoord(t, Config{
		// Listed first so pick() leases it first.
		Workers:        []string{hungSrv.URL, okSrv.URL},
		LeaseTimeout:   300 * time.Millisecond,
		HeartbeatEvery: 25 * time.Millisecond,
	})
	if err := coord.Check(context.Background()); err != nil {
		t.Fatal(err)
	}
	remote, err := runner.Execute(context.Background(), spec, runner.Options{Backend: coord})
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, remote[0].Run) != canonJSON(t, local[0].Run) {
		t.Fatal("result after reassignment diverged from local")
	}
	fs := coord.Fleet()
	if fs.Expired < 1 {
		t.Fatalf("expected an expired lease, fleet: %+v", fs)
	}
	if fs.Reassigns < 1 {
		t.Fatalf("expected a reassignment, fleet: %+v", fs)
	}
}

// garbleFirstRun corrupts the body of the first /run response — the
// corrupting-link model at its bluntest.
type garbleFirstRun struct {
	base http.RoundTripper
	hit  atomic.Int32
}

func (g *garbleFirstRun) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := g.base.RoundTrip(req)
	if err != nil || !strings.HasSuffix(req.URL.Path, "/run") {
		return resp, err
	}
	if g.hit.Add(1) == 1 {
		resp.Body.Close()
		resp.Body = io.NopCloser(strings.NewReader("\x00garbage that is not a protocol line\n"))
	}
	return resp, nil
}

// TestCorruptLinkRecovered: an undecodable result stream is classified
// corrupt and the lease reassigned; the campaign result is unaffected.
func TestCorruptLinkRecovered(t *testing.T) {
	spec := smallSpecs(t)[:1]
	local, err := runner.Execute(context.Background(), spec, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, s1 := startWorker(t, WorkerOptions{})
	_, s2 := startWorker(t, WorkerOptions{})
	coord := newCoord(t, Config{
		Workers: []string{s1.URL, s2.URL},
		Client:  &http.Client{Transport: &garbleFirstRun{base: http.DefaultTransport}},
	})
	remote, err := runner.Execute(context.Background(), spec, runner.Options{Backend: coord})
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, remote[0].Run) != canonJSON(t, local[0].Run) {
		t.Fatal("result after corrupt-link recovery diverged from local")
	}
	if fs := coord.Fleet(); fs.Corrupt < 1 {
		t.Fatalf("expected a corrupt result to be counted, fleet: %+v", fs)
	}
}

// TestVersionSkewLosesWorker: a worker announcing a different epoch is
// lost at the handshake; one streaming a skewed envelope is lost at
// result time. Neither contaminates the campaign.
func TestVersionSkewLosesWorker(t *testing.T) {
	// Handshake skew.
	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Hello{Proto: ProtoVersion, Epoch: runner.Epoch + 1, Slots: 1})
	}))
	defer skewed.Close()
	_, okSrv := startWorker(t, WorkerOptions{})
	coord := newCoord(t, Config{Workers: []string{skewed.URL, okSrv.URL}})
	if err := coord.Check(context.Background()); err != nil {
		t.Fatalf("one healthy worker must be enough: %v", err)
	}
	if fs := coord.Fleet(); fs.WorkersLost != 1 {
		t.Fatalf("skewed worker not lost at handshake: %+v", fs)
	}

	// Envelope skew: healthz lies, the envelope tells the truth.
	spec := smallSpecs(t)[:1]
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			json.NewEncoder(w).Encode(Hello{Proto: ProtoVersion, Epoch: runner.Epoch, Slots: 1})
			return
		}
		env, _ := SealResult(spec[0].Key(), testRun(), nil)
		env.Epoch = runner.Epoch + 1
		json.NewEncoder(w).Encode(streamRec{T: recResult, Env: env})
	}))
	defer liar.Close()
	_, okSrv2 := startWorker(t, WorkerOptions{})
	coord2 := newCoord(t, Config{Workers: []string{liar.URL, okSrv2.URL}})
	local, err := runner.Execute(context.Background(), spec, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := runner.Execute(context.Background(), spec, runner.Options{Backend: coord2})
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, remote[0].Run) != canonJSON(t, local[0].Run) {
		t.Fatal("result after envelope-skew recovery diverged from local")
	}
	if fs := coord2.Fleet(); fs.WorkersLost < 1 {
		t.Fatalf("envelope-skewed worker not lost: %+v", fs)
	}
}

// TestAllWorkersLostFallsBackLocal: with the whole fleet unreachable
// the backend reports ErrBackendUnavailable and runner.Execute degrades
// to local execution — the campaign completes with correct results.
func TestAllWorkersLostFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close() // connection refused from here on

	spec := smallSpecs(t)[:1]
	local, err := runner.Execute(context.Background(), spec, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord := newCoord(t, Config{
		Workers: []string{url},
		Backoff: runner.RetryPolicy{Base: time.Millisecond, Cap: 2 * time.Millisecond},
	})
	st := &runner.Status{}
	remote, err := runner.Execute(context.Background(), spec, runner.Options{Backend: coord, Status: st})
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, remote[0].Run) != canonJSON(t, local[0].Run) {
		t.Fatal("local fallback diverged from plain local execution")
	}
	if got := st.Snapshot().BackendFallbacks; got < 1 {
		t.Fatalf("expected a recorded backend fallback, got %d", got)
	}
	if fs := coord.Fleet(); fs.WorkersLost != 1 || fs.Fallbacks < 1 {
		t.Fatalf("fleet should be fully lost with a fallback: %+v", fs)
	}

	// Direct Run reports the sentinel once the fleet is gone.
	sp := spec[0]
	_, _, rerr := coord.Run(context.Background(), runner.BackendJob{Spec: &sp, Key: sp.Key()})
	if !errors.Is(rerr, runner.ErrBackendUnavailable) {
		t.Fatalf("want ErrBackendUnavailable from a lost fleet, got %v", rerr)
	}
}

// TestDoubleCompletionDedup: two leases for the same spec both deliver
// valid envelopes; exactly one wins (deterministically, by arrival) and
// the other is counted as a dedupe, never delivered twice.
func TestDoubleCompletionDedup(t *testing.T) {
	spec := smallSpecs(t)[:1]
	sp := spec[0]
	_, s1 := startWorker(t, WorkerOptions{})
	_, s2 := startWorker(t, WorkerOptions{})
	coord := newCoord(t, Config{Workers: []string{s1.URL, s2.URL}, LeaseTimeout: 10 * time.Second})

	job := runner.BackendJob{Spec: &sp, Key: sp.Key(), Label: sp.Config.Name + "/" + sp.Workload}
	race := &raceSlot{}
	out := make(chan outcome, 4)
	go coord.runLease(context.Background(), coord.workers[0], job, 1, race, out)
	go coord.runLease(context.Background(), coord.workers[1], job, 2, race, out)

	var delivered []outcome
	deadline := time.After(30 * time.Second)
	for len(delivered) < 1 || coord.dups.Load() < 1 {
		select {
		case o := <-out:
			delivered = append(delivered, o)
		case <-deadline:
			t.Fatalf("timed out: %d deliveries, %d dedupes", len(delivered), coord.dups.Load())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if len(delivered) != 1 {
		t.Fatalf("both completions were delivered (%d)", len(delivered))
	}
	if delivered[0].err != nil || delivered[0].run == nil {
		t.Fatalf("winning outcome is not a valid result: %+v", delivered[0])
	}
	if coord.dups.Load() != 1 {
		t.Fatalf("dedupe count = %d, want 1", coord.dups.Load())
	}
}

// TestWorkerAtCapacity: a saturated worker refuses with 503 and the
// coordinator classifies that transient.
func TestWorkerAtCapacity(t *testing.T) {
	wk, srv := startWorker(t, WorkerOptions{Slots: 1})
	// Occupy the only slot.
	wk.slots <- struct{}{}
	defer func() { <-wk.slots }()
	resp, err := http.Post(srv.URL+"/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated worker answered %d, want 503", resp.StatusCode)
	}
}

// TestFromFlag: the -workers flag syntax.
func TestFromFlag(t *testing.T) {
	c, err := FromFlag(" http://a:1 , http://b:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.workers) != 2 || c.workers[0].url != "http://a:1" || c.workers[1].url != "http://b:2" {
		t.Fatalf("parsed fleet: %+v", c.workers)
	}
	if _, err := FromFlag(""); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	if _, err := FromFlag("http://a:1,http://a:1"); err == nil {
		t.Fatal("duplicate workers must be rejected")
	}
	if _, err := FromFlag("not a url"); err == nil {
		t.Fatal("garbage URL must be rejected")
	}
}

