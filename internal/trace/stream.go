package trace

import "fdp/internal/program"

// Stream replays a loaded trace as an infinite instruction stream (the
// trace loops when it ends, as the paper's warmup+measure methodology
// assumes more instructions than any single pass). It implements the
// core's Oracle interface, including bounded-lookahead Peek side-channels
// for the idealized-predictor configurations.
type Stream struct {
	t   *Trace
	pos int
	// peekWindow bounds the forward scan of PeekDirection/PeekTarget.
	peekWindow int
}

// NewStream starts a replay from the beginning of the trace.
func (t *Trace) NewStream() *Stream {
	return &Stream{t: t, peekWindow: 4096}
}

// Image implements program.Stream.
func (s *Stream) Image() *program.Image { return s.t.img }

// PC returns the address of the next instruction.
func (s *Stream) PC() uint64 { return s.t.recs[s.pos].pc }

// Next implements program.Stream. When the trace ends it wraps to the
// first record; the wrap is one artificial control transfer per pass,
// which the core simply treats as a misprediction.
func (s *Stream) Next() program.DynInst {
	rec := s.t.recs[s.pos]
	s.pos++
	if s.pos == len(s.t.recs) {
		s.pos = 0
	}
	return program.DynInst{
		SI:     s.t.img.AtOrSequential(rec.pc),
		Taken:  rec.taken,
		NextPC: s.t.recs[s.pos].pc,
	}
}

// Advance skips n instructions in O(1): trace replays carry no hidden
// state beyond the position, so a skip modulo the trace length lands on
// exactly the record a full replay would. This is what makes
// checkpoint-restore of trace-driven runs nearly free.
func (s *Stream) Advance(n uint64) {
	s.pos = int((uint64(s.pos) + n) % uint64(len(s.t.recs)))
}

// PeekDirection scans ahead (bounded) for the next execution of the
// conditional branch at pc and returns its direction; false when not
// found within the window.
func (s *Stream) PeekDirection(pc uint64) bool {
	for i := 0; i < s.peekWindow; i++ {
		rec := &s.t.recs[(s.pos+i)%len(s.t.recs)]
		if rec.pc == pc {
			return rec.taken
		}
	}
	return false
}

// PeekTarget scans ahead (bounded) for the next execution of the indirect
// branch at pc and returns its target.
func (s *Stream) PeekTarget(pc uint64) (uint64, bool) {
	for i := 0; i < s.peekWindow; i++ {
		idx := (s.pos + i) % len(s.t.recs)
		if s.t.recs[idx].pc == pc {
			return s.t.recs[idx].nextPC, true
		}
	}
	return 0, false
}
