package runner

import (
	"testing"

	"fdp/internal/core"
	"fdp/internal/synth"
)

// goldenSpec is a fixed spec literal for the hash-stability test. The
// config is deliberately mostly zero-valued: the test pins the hashing
// scheme (preamble, field set, encoding), not any live default.
func goldenSpec() Spec {
	return Spec{
		Config:   core.Config{Name: "golden-spec", FTQEntries: 4, BTBEntries: 1024},
		Workload: "server_x",
		Class:    "server",
		Seed:     0xABCD,
		Warmup:   1000,
		Measure:  4000,
	}
}

// goldenSpecKey pins the content-hash scheme. If this test fails, the
// spec identity changed — a renamed/added core.Config field, a different
// preamble, or a new encoding. That invalidates every existing cache
// entry, which is correct, but it must be a *deliberate* choice: update
// the constant only after confirming the change is intentional, and bump
// Epoch if simulator semantics moved too.
const goldenSpecKey = "549205536bc846daf06502830ab5d483692efbe03bab529ea93b988f1f53086c"

func TestSpecKeyGolden(t *testing.T) {
	s := goldenSpec()
	if got := s.Key(); got != goldenSpecKey {
		t.Fatalf("spec key drifted:\n got  %s\n want %s\n(see the comment on goldenSpecKey before updating)", got, goldenSpecKey)
	}
}

// TestSpecKeySensitivity asserts every identity field changes the key and
// the execution handle does not.
func TestSpecKeySensitivity(t *testing.T) {
	base := goldenSpec()
	baseKey := base.Key()

	mutations := map[string]func(*Spec){
		"config":   func(s *Spec) { s.Config.FTQEntries = 24 },
		"workload": func(s *Spec) { s.Workload = "server_y" },
		"class":    func(s *Spec) { s.Class = "client" },
		"seed":     func(s *Spec) { s.Seed++ },
		"warmup":   func(s *Spec) { s.Warmup++ },
		"measure":  func(s *Spec) { s.Measure++ },
		"spechash": func(s *Spec) { s.SpecHash = "deadbeef" },
	}
	for name, mutate := range mutations {
		s := goldenSpec()
		mutate(&s)
		if s.Key() == baseKey {
			t.Errorf("mutating %s did not change the key", name)
		}
	}

	s := goldenSpec()
	s.NewOracle = func() core.Oracle { return synth.ByName("server_a").NewStream() }
	if s.Key() != baseKey {
		t.Error("NewOracle leaked into the key")
	}
}

// TestSpecKeyStability pins the cache and checkpoint keys of a built-in
// workload spec to their values from before the wspec refactor. Built-in
// workloads carry an empty SpecHash, and both key functions append the
// wspec term only when the hash is set — so every result cache,
// checkpoint and journal written before the refactor must still be
// addressed by identical keys. If this fails, warm caches were silently
// orphaned; that must never happen for a representation-only change.
func TestSpecKeyStability(t *testing.T) {
	w := synth.ByName("server_a")
	if w.SpecHash != "" {
		t.Fatalf("built-in workload carries SpecHash %q, want empty (cache identity must be pre-refactor)", w.SpecHash)
	}
	s := WorkloadSpec(core.DefaultConfig(), w, 200_000, 800_000)
	const (
		wantKey  = "d499db0d3c5a459460f531d2f6512247b41867c5ec859a650d56fdbffab4e66a"
		wantCkpt = "b456eec38d995040735101b01042470adea6a7de6ed0e803aa49c4d771ecf967"
		wantFFwd = "9be49c453dfa929634d1a31da57b8600904c0745af6eba19f4d91942a1c0f7e4"
	)
	if got := s.Key(); got != wantKey {
		t.Errorf("built-in Key drifted across the wspec refactor:\n got  %s\n want %s", got, wantKey)
	}
	if got := s.CheckpointKey(); got != wantCkpt {
		t.Errorf("built-in CheckpointKey drifted across the wspec refactor:\n got  %s\n want %s", got, wantCkpt)
	}
	s.FFwd = true
	if got := s.Key(); got != wantFFwd {
		t.Errorf("built-in ffwd Key drifted across the wspec refactor:\n got  %s\n want %s", got, wantFFwd)
	}

	// Spec-defined workloads must key differently from a built-in with
	// the same name/seed/budget, in both key spaces.
	s2 := s
	s2.FFwd = false
	s2.SpecHash = "0123456789abcdef"
	if s2.Key() == wantKey {
		t.Error("SpecHash did not change Key")
	}
	if s2.CheckpointKey() == wantCkpt {
		t.Error("SpecHash did not change CheckpointKey")
	}
}

// TestWorkloadSpec asserts the synth adapter carries the workload
// identity and a working oracle.
func TestWorkloadSpec(t *testing.T) {
	w := synth.ByName("client_b")
	cfg := core.DefaultConfig()
	s := WorkloadSpec(cfg, w, 100, 200)
	if s.Workload != w.Name || s.Class != w.Class || s.Seed != w.Seed {
		t.Fatalf("identity mismatch: %+v vs workload %s/%s/%d", s, w.Name, w.Class, w.Seed)
	}
	if s.NewOracle == nil || s.NewOracle() == nil {
		t.Fatal("no oracle")
	}
	// Same workload, same budget, same config => same key.
	if s.Key() != WorkloadSpec(cfg, w, 100, 200).Key() {
		t.Fatal("identical specs hash differently")
	}
}
