package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestChecksCleanRun: the invariant checker is pure observation — a
// checked run must produce byte-identical results to an unchecked one
// and report no violation on a healthy machine.
func TestChecksCleanRun(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), BaselineConfig()} {
		plain, err := Simulate(cfg, sharedWL.NewStream(), sharedWL.Name, 10_000, 50_000)
		if err != nil {
			t.Fatalf("Simulate(%s): %v", cfg.Name, err)
		}
		checked, err := SimulateOptions(context.Background(), cfg, sharedWL.NewStream(), sharedWL.Name,
			10_000, 50_000, SimOptions{Check: true})
		if err != nil {
			t.Fatalf("checked Simulate(%s): %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(plain, checked) {
			t.Errorf("%s: checked run diverged from unchecked run", cfg.Name)
		}
	}
}

// TestChecksDetectAccountingLeak: corrupting the cycle-accounting vector
// mid-run trips the conservation invariant on the next checked cycle.
func TestChecksDetectAccountingLeak(t *testing.T) {
	c, err := New(DefaultConfig(), sharedWL.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableChecks()
	c.Step(100)
	if err := c.CheckErr(); err != nil {
		t.Fatalf("healthy core reported violation: %v", err)
	}
	c.run.Acct[0] += 5 // a cycle charged twice: conservation now fails
	c.Step(1)
	err = c.CheckErr()
	if err == nil {
		t.Fatal("accounting corruption not detected")
	}
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("violation %v does not wrap ErrInvariant", err)
	}
}

// TestChecksViolationStopsRun: a violation stops the cycle loop with the
// wrapped error, not just a latent CheckErr (runUntil is the loop under
// RunContext; corruption there must not simulate 50k more cycles).
func TestChecksViolationStopsRun(t *testing.T) {
	c, err := New(DefaultConfig(), sharedWL.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableChecks()
	c.Step(10)
	c.run.Acct[0] += 3
	start := c.Now()
	if err := c.runUntil(context.Background(), start+50_000); !errors.Is(err, ErrInvariant) {
		t.Fatalf("runUntil returned %v, want ErrInvariant", err)
	}
	if c.Now() > start+2 {
		t.Errorf("run continued %d cycles past the violation", c.Now()-start)
	}
}

// TestHeartbeatStamped: a supervised run beats its heartbeat with
// advancing cycle counts.
func TestHeartbeatStamped(t *testing.T) {
	hb := &Heartbeat{}
	if !hb.LastBeat().IsZero() {
		t.Fatal("fresh heartbeat has a non-zero beat time")
	}
	before := time.Now()
	_, err := SimulateOptions(context.Background(), DefaultConfig(), sharedWL.NewStream(), sharedWL.Name,
		0, 100_000, SimOptions{Heartbeat: hb})
	if err != nil {
		t.Fatal(err)
	}
	if hb.Cycles() == 0 {
		t.Error("heartbeat never advanced past cycle 0")
	}
	if hb.LastBeat().Before(before) {
		t.Errorf("last beat %v predates the run", hb.LastBeat())
	}
}

// TestHeartbeatNilSafe: the nil heartbeat is inert, so the cycle loop
// needs no branches beyond the method call.
func TestHeartbeatNilSafe(t *testing.T) {
	var hb *Heartbeat
	hb.Beat(42)
	if hb.Cycles() != 0 || !hb.LastBeat().IsZero() {
		t.Error("nil heartbeat reported state")
	}
}
