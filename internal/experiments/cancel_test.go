package experiments

import (
	"testing"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/synth"
)

// TestRunGridFirstErrorCancels injects a config that fails validation ahead
// of a fleet of very long runs and checks that the grid reports the error
// promptly instead of simulating the rest: first-error cancellation must
// propagate from the runner through runGrid.
func TestRunGridFirstErrorCancels(t *testing.T) {
	bad := core.BaselineConfig()
	bad.Name = "bad"
	bad.FTQEntries = -1 // rejected by config validation before the cycle loop

	// Each of these would take minutes if actually simulated to completion.
	configs := []core.Config{bad}
	for i := 0; i < 6; i++ {
		cfg := core.BaselineConfig()
		cfg.Name = "slow-" + string(rune('a'+i))
		configs = append(configs, cfg)
	}

	reg := obs.NewRegistry()
	opts := Options{
		Warmup:    0,
		Measure:   500_000_000,
		Workloads: synth.StandardWorkloads()[:1],
		Parallel:  2,
		RunnerReg: reg,
	}
	sets, err := runGrid(opts, configs)
	if err == nil {
		t.Fatalf("runGrid with invalid config succeeded: %v", sets)
	}
	// With 2 workers, at most the bad job plus the jobs already claimed
	// when it failed can have started; the rest must be canceled.
	started := reg.Counter(runner.MetricJobs).Value()
	if started > 3 {
		t.Fatalf("first error did not cancel remaining jobs: %d of %d started", started, len(configs))
	}
	if canceled := reg.Counter(runner.MetricCanceled).Value(); canceled < uint64(len(configs))-3 {
		t.Fatalf("canceled count too low: %d", canceled)
	}
}
