package runner

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"fdp/internal/obs"
	"fdp/internal/stats"
)

func testRun(workload string, cycles uint64) *stats.Run {
	return &stats.Run{
		Config:       "test",
		Workload:     workload,
		Cycles:       cycles,
		Instructions: 2 * cycles,
		WindowIPC:    []float64{1.5, 2.0},
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k1", false); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k1", testRun("a", 100), nil)
	run, m, ok := c.Get("k1", false)
	if !ok || run == nil || m != nil {
		t.Fatalf("Get = (%v, %v, %v), want run hit without manifest", run, m, ok)
	}
	if run.Cycles != 100 || run.Workload != "a" {
		t.Fatalf("wrong cached run: %+v", run)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestCacheIsolation asserts mutating a returned run cannot corrupt the
// cached copy (and vice versa for the stored run).
func TestCacheIsolation(t *testing.T) {
	c, _ := NewCache(4, "")
	orig := testRun("a", 100)
	c.Put("k", orig, nil)
	orig.Cycles = 999
	orig.WindowIPC[0] = -1

	got, _, _ := c.Get("k", false)
	if got.Cycles != 100 || got.WindowIPC[0] != 1.5 {
		t.Fatalf("cache aliased caller state: %+v", got)
	}
	got.WindowIPC[1] = -2
	again, _, _ := c.Get("k", false)
	if again.WindowIPC[1] != 2.0 {
		t.Fatal("cache aliased returned state")
	}
}

// TestCacheNeedManifest: an entry stored without a manifest cannot serve
// an observed consumer.
func TestCacheNeedManifest(t *testing.T) {
	c, _ := NewCache(4, "")
	c.Put("k", testRun("a", 1), nil)
	if _, _, ok := c.Get("k", true); ok {
		t.Fatal("manifest-less entry served an observed consumer")
	}
	m := &obs.Manifest{Schema: obs.ManifestSchema, Workload: "a"}
	c.Put("k", testRun("a", 1), m)
	if _, got, ok := c.Get("k", true); !ok || got == nil || got.Workload != "a" {
		t.Fatalf("manifest entry not served: ok=%v m=%+v", ok, got)
	}
}

func TestCacheEviction(t *testing.T) {
	c, _ := NewCache(2, "")
	c.Put("k1", testRun("a", 1), nil)
	c.Put("k2", testRun("b", 2), nil)
	if _, _, ok := c.Get("k1", false); !ok { // k1 now most recent
		t.Fatal("k1 missing before eviction")
	}
	c.Put("k3", testRun("c", 3), nil) // evicts k2 (least recently used)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, _, ok := c.Get("k2", false); ok {
		t.Fatal("k2 survived eviction")
	}
	for _, k := range []string{"k1", "k3"} {
		if _, _, ok := c.Get(k, false); !ok {
			t.Fatalf("%s was evicted, want k2", k)
		}
	}
}

// TestCacheDiskRoundTrip: a second cache over the same directory serves
// results simulated by the first — the resume path.
func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.Manifest{Schema: obs.ManifestSchema, Workload: "a", Counters: map[string]uint64{"run.cycles": 100}}
	c1.Put("k", testRun("a", 100), m)

	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	run, gotM, ok := c2.Get("k", true)
	if !ok {
		t.Fatal("disk entry not found by fresh cache")
	}
	if run.Cycles != 100 || run.WindowIPC[1] != 2.0 {
		t.Fatalf("disk run corrupted: %+v", run)
	}
	if gotM == nil || gotM.Counters["run.cycles"] != 100 {
		t.Fatalf("disk manifest corrupted: %+v", gotM)
	}
}

// writeRawEntry builds a well-formed v2 disk entry for key under the
// given schema/epoch/embedded key and writes it to dir.
func writeRawEntry(t *testing.T, dir, file, embeddedKey string, schema, epoch int, run *stats.Run) {
	t.Helper()
	payload, err := json.Marshal(diskPayload{Run: run})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(diskEntry{
		Schema:  schema,
		Epoch:   epoch,
		Key:     embeddedKey,
		CRC:     crc32.ChecksumIEEE(payload),
		Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCacheCorruptDiskEntry: garbage on disk is quarantined (renamed to
// *.corrupt, counted, hook fired) and treated as a miss, never a
// failure; a subsequent Put repairs it.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir)
	var hooked int
	c.SetQuarantineHook(func() { hooked++ })
	if err := os.WriteFile(filepath.Join(dir, "k.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("corrupt entry served")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	if hooked != 1 {
		t.Fatalf("quarantine hook fired %d times, want 1", hooked)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.json.corrupt")); err != nil {
		t.Fatalf("corrupt entry not set aside: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.json")); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}
	c.Put("k", testRun("a", 7), nil)
	c2, _ := NewCache(4, dir)
	if run, _, ok := c2.Get("k", false); !ok || run.Cycles != 7 {
		t.Fatal("Put did not repair the corrupt entry")
	}
}

// TestCacheTruncatedDiskEntry: an entry cut short mid-write (as by a
// crash on a filesystem without atomic rename) is quarantined.
func TestCacheTruncatedDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir)
	c.Put("k", testRun("a", 9), nil)
	p := filepath.Join(dir, "k.json")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c2, _ := NewCache(4, dir)
	if _, _, ok := c2.Get("k", false); ok {
		t.Fatal("truncated entry served")
	}
	if got := c2.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
}

// TestCacheBitFlippedDiskEntry: a single flipped bit inside the payload
// — which can still parse as valid JSON — is caught by the CRC and
// quarantined rather than served as a wrong result.
func TestCacheBitFlippedDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir)
	c.Put("k", testRun("a", 100), nil)
	p := filepath.Join(dir, "k.json")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside a digit of the payload: "cycles":100 becomes a
	// different, still-valid number, so only the CRC can catch it.
	i := bytes.LastIndexByte(b, '1')
	if i < 0 {
		t.Fatal("no digit to flip")
	}
	b[i] ^= 0x02 // '1' -> '3'
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, _ := NewCache(4, dir)
	if _, _, ok := c2.Get("k", false); ok {
		t.Fatal("bit-flipped entry served")
	}
	if got := c2.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("bit-flipped entry not set aside: %v", err)
	}
}

// TestCacheEpochMismatch: well-formed entries written under another
// simulator epoch or cache schema are plain misses — not corruption, so
// nothing is quarantined. A mismatched embedded key (hand-copied file)
// IS quarantined: the file can never serve its name.
func TestCacheEpochMismatch(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir)
	writeRawEntry(t, dir, "k", "k", cacheSchema, Epoch+1, testRun("a", 5))
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("entry from a different epoch served")
	}
	writeRawEntry(t, dir, "k", "k", cacheSchema+1, Epoch, testRun("a", 5))
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("entry with a different schema served")
	}
	if got := c.Quarantined(); got != 0 {
		t.Fatalf("foreign entries quarantined: %d", got)
	}
	writeRawEntry(t, dir, "k", "other", cacheSchema, Epoch, testRun("a", 5))
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("entry with mismatched key served")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d after key mismatch, want 1", got)
	}
}
