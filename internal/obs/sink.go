package obs

import (
	"io"
	"os"
)

// stdoutSink wraps os.Stdout with a no-op Close so "-" sinks can be
// closed like any file without closing the process's stdout.
type stdoutSink struct{ io.Writer }

func (stdoutSink) Close() error { return nil }

// OpenSink opens path for writing observability output: "-" means stdout
// (whose Close is a no-op), anything else is created as a regular file.
// Every CLI output flag that takes a JSONL stream (-metrics, -trace,
// -intervals-out) resolves its path through this helper so stdout
// streaming works uniformly across fdpsim, sweep and experiments.
func OpenSink(path string) (io.WriteCloser, error) {
	if path == "-" {
		return stdoutSink{os.Stdout}, nil
	}
	return os.Create(path)
}
