package dist

import (
	"encoding/json"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/stats"
	"fdp/internal/synth"
	"fdp/internal/wspec"
)

func testRun() *stats.Run {
	return &stats.Run{Workload: "server_a", Class: "server", Config: "fdp",
		Cycles: 123_456, Instructions: 98_765}
}

// TestEnvelopeRoundTrip: seal → marshal → parse → open reproduces the
// run and manifest exactly.
func TestEnvelopeRoundTrip(t *testing.T) {
	run := testRun()
	m := &obs.Manifest{Workload: "server_a"}
	env, err := SealResult("k123", run, m)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := ParseEnvelope(wire)
	if err != nil {
		t.Fatal(err)
	}
	run2, m2, err := env2.Open("k123")
	if err != nil {
		t.Fatal(err)
	}
	if run2.Cycles != run.Cycles || run2.Instructions != run.Instructions || run2.Workload != run.Workload {
		t.Fatalf("run did not round-trip: %+v vs %+v", run2, run)
	}
	if m2 == nil || m2.Workload != "server_a" {
		t.Fatalf("manifest did not round-trip: %+v", m2)
	}
}

// TestEnvelopeRejectsTampering: every integrity violation is rejected
// with its sentinel, never silently accepted.
func TestEnvelopeRejectsTampering(t *testing.T) {
	seal := func() *Envelope {
		env, err := SealResult("k123", testRun(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	cases := []struct {
		name   string
		mutate func(*Envelope)
		want   error
	}{
		{"bit flip in payload", func(e *Envelope) { e.Payload[len(e.Payload)/2] ^= 0x10 }, ErrCorrupt},
		{"crc mismatch", func(e *Envelope) { e.CRC ^= 1 }, ErrCorrupt},
		{"wrong key", func(e *Envelope) { e.Key = "other" }, ErrCorrupt},
		{"truncated payload", func(e *Envelope) { e.Payload = e.Payload[:len(e.Payload)-3] }, ErrCorrupt},
		{"protocol skew", func(e *Envelope) { e.Proto = ProtoVersion + 1 }, ErrVersionSkew},
		{"epoch skew", func(e *Envelope) { e.Epoch = runner.Epoch + 1 }, ErrVersionSkew},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := seal()
			tc.mutate(env)
			if _, _, err := env.Open("k123"); !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
	// A payload that is valid JSON but has no run is corrupt too.
	env := seal()
	env.Payload = []byte(`{}`)
	env.CRC = crc32.ChecksumIEEE(env.Payload)
	if _, _, err := env.Open("k123"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("runless payload: want ErrCorrupt, got %v", err)
	}
	if _, err := SealResult("k", nil, nil); err == nil {
		t.Fatal("sealing a nil run must fail")
	}
}

// TestJobBuildSpecBuiltin: the wire Job reconstructs a built-in
// workload's spec bit-for-bit (same content key), including under a
// seed offset.
func TestJobBuildSpecBuiltin(t *testing.T) {
	cfg := core.DefaultConfig()
	w := synth.ByName("server_a")
	sp := runner.WorkloadSpec(cfg, w, 1000, 2000)
	job := JobFromBackend(runner.BackendJob{Spec: &sp, Key: sp.Key()}, "L1", 100)
	got, err := job.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != sp.Key() {
		t.Fatalf("reconstructed key %s != %s", got.Key(), sp.Key())
	}

	// Seed-offset suite: the job's seed differs from the cached built-in.
	wOff := synth.WorkloadsWithSeedOffset(7)[0]
	spOff := runner.WorkloadSpec(cfg, wOff, 1000, 2000)
	jobOff := JobFromBackend(runner.BackendJob{Spec: &spOff, Key: spOff.Key()}, "L2", 100)
	gotOff, err := jobOff.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if gotOff.Key() != spOff.Key() {
		t.Fatalf("seed-offset reconstruction diverged")
	}

	// An unknown workload name is version skew (the coordinator knows
	// workloads this build lacks), not corruption.
	bad := job
	bad.Workload = "no_such_workload"
	if _, err := bad.BuildSpec(); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("unknown workload: want ErrVersionSkew, got %v", err)
	}
}

// TestJobBuildSpecDoc: spec-defined workloads travel as their canonical
// document; the worker recompiles the document and lands on the same
// content key.
func TestJobBuildSpecDoc(t *testing.T) {
	doc := &wspec.Spec{
		Version: wspec.Version, Name: "mixy", Class: "server", Seed: 42,
		SwitchEvery: wspec.DefaultSwitchEvery,
		Mix: []wspec.Component{
			{Preset: "server", Variant: 0, Weight: 2},
			{Preset: "client", Variant: 1, Weight: 1},
		},
	}
	w, err := synth.FromSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	sp := runner.WorkloadSpec(core.DefaultConfig(), w, 1000, 2000)
	job := JobFromBackend(runner.BackendJob{Spec: &sp, Key: sp.Key()}, "L1", 100)
	if job.SpecDoc == "" || job.SpecHash == "" {
		t.Fatal("spec-defined workload must ship its document and hash")
	}
	got, err := job.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != sp.Key() {
		t.Fatalf("spec-doc reconstruction: key %s != %s", got.Key(), sp.Key())
	}

	// A document tampered in flight no longer matches SpecHash.
	bad := job
	bad.SpecDoc = strings.Replace(bad.SpecDoc, "weight: 2", "weight: 3", 1)
	_, err = bad.BuildSpec()
	var jerr *runner.Error
	if !errors.As(err, &jerr) || jerr.Class != runner.ClassCorruptInput {
		t.Fatalf("tampered spec doc: want corrupt class, got %v", err)
	}
}

// TestJobBuildSpecDocCorrupt: a tampered spec document or key mismatch
// is classified corrupt.
func TestJobBuildSpecDocCorrupt(t *testing.T) {
	cfg := core.DefaultConfig()
	w := synth.ByName("client_a")
	sp := runner.WorkloadSpec(cfg, w, 1000, 2000)
	job := JobFromBackend(runner.BackendJob{Spec: &sp, Key: sp.Key()}, "L1", 100)

	garbled := job
	garbled.Key = strings.Repeat("0", len(job.Key))
	_, err := garbled.BuildSpec()
	var jerr *runner.Error
	if !errors.As(err, &jerr) || jerr.Class != runner.ClassCorruptInput {
		t.Fatalf("key mismatch: want corrupt-classified error, got %v", err)
	}

	doc := job
	doc.SpecDoc = "version: 99\nnot a spec"
	doc.SpecHash = "deadbeef"
	if _, err := doc.BuildSpec(); err == nil {
		t.Fatal("garbage spec doc must fail")
	} else if !errors.As(err, &jerr) || jerr.Class != runner.ClassCorruptInput {
		t.Fatalf("garbage spec doc: want corrupt class, got %v", err)
	}
}

// FuzzResultEnvelope: no envelope bytes — however mangled — may panic
// the parser or open to a runless result.
func FuzzResultEnvelope(f *testing.F) {
	env, err := SealResult("k123", testRun(), &obs.Manifest{Workload: "server_a"})
	if err != nil {
		f.Fatal(err)
	}
	good, _ := json.Marshal(env)
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"proto":1,"epoch":2,"key":"k123","crc":0,"payload":{}}`))
	mangled := append([]byte(nil), good...)
	mangled[len(mangled)/2] ^= 0x40
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ParseEnvelope(data)
		if err != nil {
			return
		}
		run, _, err := e.Open("k123")
		if err == nil && run == nil {
			t.Fatal("Open returned no error and no run")
		}
	})
}
