package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzHistogram checks the power-of-two bucketing invariants over
// arbitrary sample sequences: every value lands in exactly one bucket
// whose bounds contain it, bucket counts sum to the observation count,
// and min/max/sum match a straightforward recomputation.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<63))
	seed := make([]byte, 0, 32)
	for _, v := range []uint64{0, 1, 255, 256, 1<<40 - 1} {
		seed = binary.LittleEndian.AppendUint64(seed, v)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Histogram
		var values []uint64
		for len(data) >= 8 {
			v := binary.LittleEndian.Uint64(data)
			data = data[8:]
			values = append(values, v)
			h.Observe(v)
		}
		if h.Count() != uint64(len(values)) {
			t.Fatalf("count = %d, want %d", h.Count(), len(values))
		}
		var sum, min, max uint64
		for i, v := range values {
			if i == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
			b := BucketIndex(v)
			lo, hi := BucketBounds(b)
			if v < lo || v > hi {
				t.Fatalf("value %d bucketed into [%d,%d]", v, lo, hi)
			}
		}
		if h.Sum() != sum {
			t.Fatalf("sum = %d, want %d", h.Sum(), sum)
		}
		s := h.Snapshot()
		var total uint64
		for _, b := range s.Buckets {
			total += b.Count
			if b.Lo > b.Hi {
				t.Fatalf("bucket bounds inverted: [%d,%d]", b.Lo, b.Hi)
			}
			if b.Count == 0 {
				t.Fatal("snapshot contains empty bucket")
			}
		}
		if total != h.Count() {
			t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
		}
		if len(values) > 0 && (s.Min != min || s.Max != max) {
			t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, min, max)
		}
	})
}

// FuzzSpanJSONL is the span codec's differential fuzz target: arbitrary
// input must never panic; any line that parses must round-trip through
// the hand-rolled encoder bit-exactly; and the hand-rolled encoding must
// agree with encoding/json's view of the wire struct (parse of either
// yields the same Span).
func FuzzSpanJSONL(f *testing.F) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		f.Add(AppendSpanJSONL(nil, Span{Run: "fdp/server_a", Job: 3, Attempt: 1, Kind: k, Start: 12345, Dur: 678, Detail: "restored"}))
	}
	f.Add(AppendSpanJSONL(nil, Span{Run: `we"ird\run` + "\n\x00\x7f", Kind: SpanRetry, Start: -5, Err: "boom: \"quoted\""}))
	f.Add([]byte(`{"r":"a/b","j":0,"a":0,"k":"queued","s":0,"d":0}`))
	f.Add([]byte(`{"r":"x","j":1,"a":2,"k":"nope","s":3,"d":4}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, line []byte) {
		sp, err := ParseSpan(line)
		if err != nil {
			return
		}
		enc := AppendSpanJSONL(nil, sp)
		back, err := ParseSpan(enc)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", enc, err)
		}
		if back != sp {
			t.Fatalf("round trip %v -> %q -> %v", sp, enc, back)
		}
		// Differential check: encoding/json over the wire struct must
		// describe the same span as the hand-rolled encoder.
		std, err := json.Marshal(wireSpan{R: sp.Run, J: sp.Job, A: sp.Attempt, K: sp.Kind.String(), S: sp.Start, D: sp.Dur, M: sp.Detail, E: sp.Err})
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		fromStd, err := ParseSpan(std)
		if err != nil {
			t.Fatalf("parse of std encoding %q failed: %v", std, err)
		}
		if fromStd != sp {
			t.Fatalf("codec divergence: hand-rolled %q vs std %q", enc, std)
		}
		// The stream reader must accept the canonical encoding too.
		sps, err := ReadSpanJSONL(bytes.NewReader(append(enc, '\n')))
		if err != nil || len(sps) != 1 || sps[0] != sp {
			t.Fatalf("ReadSpanJSONL(%q) = %v, %v", enc, sps, err)
		}
	})
}

// FuzzEventJSONL hardens the event codec: arbitrary input must never
// panic, and any line that parses must re-encode and re-parse to the same
// event (a full round trip). Structured seeds exercise the encode side.
func FuzzEventJSONL(f *testing.F) {
	for k := Kind(0); k < numKinds; k++ {
		f.Add(AppendJSONL(nil, Event{Cycle: 12345, Kind: k, A: 1 << 40, B: 7}))
	}
	f.Add([]byte(`{"c":0,"k":"enq","a":0,"b":0}`))
	f.Add([]byte(`{"run":"header"}`))
	f.Add([]byte(`{"c":1,"k":"nope","a":0,"b":0}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := ParseEvent(line)
		if err != nil {
			return
		}
		enc := AppendJSONL(nil, ev)
		back, err := ParseEvent(enc)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", enc, err)
		}
		if back != ev {
			t.Fatalf("round trip %v -> %q -> %v", ev, enc, back)
		}
		// The stream reader must accept the canonical encoding too.
		evs, err := ReadJSONL(bytes.NewReader(append(enc, '\n')))
		if err != nil || len(evs) != 1 || evs[0] != ev {
			t.Fatalf("ReadJSONL(%q) = %v, %v", enc, evs, err)
		}
	})
}
