package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"fdp/internal/synth"
)

// TestSimulateContextCancel verifies that a canceled context stops a
// simulation that would otherwise run for a very long time, and that the
// run's error is the context error.
func TestSimulateContextCancel(t *testing.T) {
	w := synth.ByName("server_a")
	ctx, cancel := context.WithCancel(context.Background())

	type outcome struct {
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		// 500M instructions: minutes of work if cancellation is broken.
		_, err := SimulateContext(ctx, DefaultConfig(), w.NewStream(), w.Name, 0, 500_000_000, nil)
		ch <- outcome{err}
	}()
	// Let the simulation get past a few poll intervals, then cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case o := <-ch:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation did not stop after cancellation")
	}
}

// TestSimulateContextBackground asserts the uncancellable path still
// completes normally and matches the plain Simulate result.
func TestSimulateContextBackground(t *testing.T) {
	w := synth.ByName("client_a")
	want, err := Simulate(DefaultConfig(), w.NewStream(), w.Name, 5_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateContext(context.Background(), DefaultConfig(), w.NewStream(), w.Name, 5_000, 20_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.Mispredictions != want.Mispredictions {
		t.Fatalf("SimulateContext diverged from Simulate: %+v vs %+v", got, want)
	}
}
