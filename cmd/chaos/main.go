// Command chaos is the seeded fault-injection gate behind `make
// chaos-check`: it proves the hardened execution path end to end by
// actually injecting the failures the runner claims to survive.
//
// Phase 1 (in-process faults) runs a small simulation grid with a panic, a
// hang, and a corrupt disk-cache entry planted by faultkit, and asserts
// the retry policy absorbs the panic, the watchdog kills the hang, the
// corrupt entry is quarantined (not served, not silently missed), and
// keep-going still completes every healthy job.
//
// Phase 2 (crash resume) re-execs itself, kills the child with os.Exit(9)
// mid-campaign — the kill -9 model — garbles the journal tail, then
// resumes over the same cache directory and asserts exactly the journaled
// jobs are trusted from the cache and only the unfinished ones re-run.
//
// Phase 3 (distributed chaos) re-execs three worker children and runs a
// campaign through the lease-based distributed backend while one worker
// is SIGKILLed mid-campaign, another hangs every lease it accepts, and
// the link to the only healthy worker flips bits and truncates streams
// (faultkit.Transport). The campaign must still complete with runs and
// manifests byte-identical to a clean local execution, with the expiry,
// reassignment, worker-loss, and corrupt-envelope counters all proving
// their paths actually fired.
//
// Exit status 0 means every assertion held. On failure the working
// directory is kept for inspection.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fdp/internal/core"
	"fdp/internal/dist"
	"fdp/internal/faultkit"
	"fdp/internal/monitor"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/synth"
)

// crashAfter is how many jobs the crash-phase child completes (and
// journals) before the injected os.Exit kills it.
const crashAfter = 2

func main() {
	var (
		seed   = flag.Uint64("seed", 0xC4A05, "fault-plan seed (chaos runs replay exactly from their seed)")
		dir    = flag.String("dir", "", "working directory (default: a temp dir, removed on success)")
		child  = flag.Bool("crash-child", false, "internal: run the crash-phase campaign and die mid-run")
		worker = flag.Bool("worker-child", false, "internal: serve the distributed worker protocol on an ephemeral port")
		hang   = flag.Bool("hang", false, "internal: with -worker-child, hang every lease until canceled")
	)
	flag.Parse()

	if *child {
		runCrashChild(*dir)
		// runCrashChild only returns if the planned kill never fired.
		fmt.Fprintln(os.Stderr, "chaos: crash child completed without dying (exit fault never fired)")
		os.Exit(3)
	}
	if *worker {
		runWorkerChild(*hang) // never returns
	}

	root := *dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "fdp-chaos-")
		if err != nil {
			fail("%v", err)
		}
	}
	fmt.Printf("chaos: seed=%#x dir=%s\n", *seed, root)

	phase1(root, *seed)
	phase2(root, *seed)
	phase3(*seed)

	if *dir == "" {
		os.RemoveAll(root)
	}
	fmt.Println("chaos: OK")
}

// chaosSpecs is the shared campaign grid: both phases and the crash child
// must build the identical spec list, since fault plans and journal
// contents are keyed by job index and spec hash.
func chaosSpecs() []runner.Spec {
	ws, err := synth.Resolve("server_a", "client_a")
	if err != nil {
		fail("%v", err)
	}
	var specs []runner.Spec
	for _, cfg := range []core.Config{core.DefaultConfig(), core.BaselineConfig()} {
		for _, w := range ws {
			specs = append(specs, runner.WorkloadSpec(cfg, w, 10_000, 40_000))
		}
	}
	return specs
}

// phase1 injects a panic, a hang, and a corrupt cache entry into one
// keep-going Execute and asserts each is survived the advertised way.
func phase1(root string, seed uint64) {
	fmt.Println("chaos: phase 1: in-process faults (panic, hang, corrupt cache entry)")
	specs := chaosSpecs()
	cacheDir := filepath.Join(root, "phase1-cache")
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, cacheDir)
	if err != nil {
		fail("%v", err)
	}

	// Plant a corrupt cache entry for the last spec: run it once to get a
	// real on-disk entry, then tear it in half. The campaign must
	// quarantine it (rename to *.corrupt) and re-simulate, not serve it.
	last := len(specs) - 1
	if _, err := runner.Execute(context.Background(), specs[last:], runner.Options{Cache: cache}); err != nil {
		fail("seeding cache entry: %v", err)
	}
	entry := filepath.Join(cacheDir, specs[last].Key()+".json")
	if err := faultkit.TruncateFrac(entry, 0.5); err != nil {
		fail("corrupting cache entry: %v", err)
	}
	// A fresh cache over the same directory, so the torn entry is read
	// back from disk instead of the in-memory copy.
	cache, err = runner.NewCache(runner.DefaultCacheCapacity, cacheDir)
	if err != nil {
		fail("%v", err)
	}

	plan := faultkit.NewPlan()
	plan.Set(0, faultkit.Fault{Kind: faultkit.Panic, Attempts: 1}) // transient: retry absorbs it
	plan.Set(1, faultkit.Fault{Kind: faultkit.Hang})               // watchdog food: fatal, quarantined

	reg := obs.NewRegistry()
	results, err := runner.Execute(context.Background(), specs, runner.Options{
		Parallel:        2,
		Cache:           cache,
		Reg:             reg,
		Check:           true,
		WatchdogTimeout: 250 * time.Millisecond,
		Retry:           runner.RetryPolicy{Attempts: 3, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
		KeepGoing:       true,
		FaultHook:       plan.Hook(),
	})

	var jerr *runner.Error
	if !errors.As(err, &jerr) {
		fail("phase 1: Execute returned %v, want a classified *runner.Error for the quarantined hang", err)
	}
	if !errors.Is(err, runner.ErrHung) {
		fail("phase 1: quarantined error %v does not wrap ErrHung", err)
	}
	for i, res := range results {
		if i == 1 {
			if res.Run != nil {
				fail("phase 1: hung job %d produced a run", i)
			}
			continue
		}
		if res.Run == nil {
			fail("phase 1: healthy job %d has no run (err: %v)", i, res.Err)
		}
	}
	assertCounter(reg, runner.MetricRetries, 1)
	assertCounter(reg, runner.MetricWatchdogFired, 1)
	assertCounter(reg, runner.MetricQuarantined, 1)
	assertCounter(reg, runner.MetricCacheQuarantined, 1)
	if got := plan.Injected(faultkit.Panic); got != 1 {
		fail("phase 1: injected %d panics, want 1", got)
	}
	if got := plan.Injected(faultkit.Hang); got != 1 {
		fail("phase 1: injected %d hangs, want 1", got)
	}
	if _, err := os.Stat(entry + ".corrupt"); err != nil {
		fail("phase 1: corrupt cache entry was not quarantined to *.corrupt: %v", err)
	}
	fmt.Println("chaos: phase 1: OK (panic retried, hang watchdogged, corrupt entry quarantined)")
}

// phase2 kills a child mid-campaign, garbles the journal tail, and
// asserts the resume trusts exactly the journaled results.
func phase2(root string, seed uint64) {
	fmt.Println("chaos: phase 2: crash resume (kill -9 mid-campaign, garbled journal tail)")
	dir := filepath.Join(root, "phase2")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail("%v", err)
	}
	exe, err := os.Executable()
	if err != nil {
		fail("%v", err)
	}
	cmd := exec.Command(exe, "-crash-child", "-dir", dir, "-seed", strconv.FormatUint(seed, 10))
	cmd.Stderr = os.Stderr
	err = cmd.Run()
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) || xerr.ExitCode() != 9 {
		fail("phase 2: crash child exited %v, want exit status 9", err)
	}
	fmt.Printf("chaos: phase 2: child died with exit status 9 after %d journaled jobs\n", crashAfter)

	journalPath := filepath.Join(dir, "journal.wal")
	if err := faultkit.AppendGarbage(journalPath, seed, 37); err != nil {
		fail("garbling journal tail: %v", err)
	}

	specs := chaosSpecs()
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, dir)
	if err != nil {
		fail("%v", err)
	}
	journal, err := runner.OpenJournal(journalPath)
	if err != nil {
		fail("reopening garbled journal: %v", err)
	}
	defer journal.Close()
	records, truncated := journal.Recovered()
	if records != crashAfter {
		fail("phase 2: journal recovered %d records, want %d", records, crashAfter)
	}
	if truncated == 0 {
		fail("phase 2: journal recovery truncated nothing despite the garbled tail")
	}
	fmt.Printf("chaos: phase 2: journal recovered %d records, truncated %d garbage bytes\n", records, truncated)

	reg := obs.NewRegistry()
	results, err := runner.Execute(context.Background(), specs, runner.Options{
		Cache:   cache,
		Journal: journal,
		Reg:     reg,
	})
	if err != nil {
		fail("phase 2: resume failed: %v", err)
	}
	for i, res := range results {
		if res.Run == nil {
			fail("phase 2: resumed job %d has no run", i)
		}
		if (i < crashAfter) != res.CacheHit {
			fail("phase 2: job %d cache hit = %v, want %v (journal gates cache trust)",
				i, res.CacheHit, i < crashAfter)
		}
	}
	assertCounter(reg, runner.MetricCacheHits, crashAfter)
	assertCounter(reg, runner.MetricCacheMisses, uint64(len(specs)-crashAfter))
	if journal.Len() != len(specs) {
		fail("phase 2: journal holds %d keys after resume, want %d", journal.Len(), len(specs))
	}
	fmt.Printf("chaos: phase 2: OK (resume re-ran only the %d unjournaled jobs)\n", len(specs)-crashAfter)
}

// runCrashChild runs the campaign with a journal and dies via an injected
// os.Exit(9) when the third job starts — the first two results are cached
// and journaled (both fsync'd) by then.
func runCrashChild(dir string) {
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, dir)
	if err != nil {
		fail("%v", err)
	}
	journal, err := runner.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		fail("%v", err)
	}
	plan := faultkit.NewPlan()
	plan.Set(crashAfter, faultkit.Fault{Kind: faultkit.Exit, Code: 9})
	// Parallel: 1 makes the execution order exactly the spec order, so the
	// kill lands after precisely crashAfter journaled completions.
	_, _ = runner.Execute(context.Background(), chaosSpecs(), runner.Options{
		Parallel:  1,
		Cache:     cache,
		Journal:   journal,
		FaultHook: plan.Hook(),
	})
}

// phase3Specs widens the shared grid with a second budget tier so the
// distributed campaign has enough jobs for the kill to land mid-run.
func phase3Specs() []runner.Spec {
	specs := chaosSpecs()
	ws, err := synth.Resolve("server_a", "client_a")
	if err != nil {
		fail("%v", err)
	}
	for _, cfg := range []core.Config{core.DefaultConfig(), core.BaselineConfig()} {
		for _, w := range ws {
			specs = append(specs, runner.WorkloadSpec(cfg, w, 5_000, 20_000))
		}
	}
	return specs
}

// phase3 runs a campaign against a three-worker fleet under process- and
// network-level chaos and asserts results identical to a clean local run.
func phase3(seed uint64) {
	fmt.Println("chaos: phase 3: distributed campaign (worker kill -9, hung worker, corrupting link)")
	specs := phase3Specs()

	// Clean local baseline: the distributed campaign must reproduce these
	// bytes exactly, whatever the fleet goes through.
	baseline, err := runner.Execute(context.Background(), specs, runner.Options{Parallel: 2, Observe: true})
	if err != nil {
		fail("phase 3: baseline run: %v", err)
	}

	healthy := startWorkerChild(false)
	defer healthy.stop()
	victim := startWorkerChild(false)
	defer victim.stop()
	tarpit := startWorkerChild(true)
	defer tarpit.stop()

	tr := faultkit.NewTransport(seed, nil, faultkit.NetFaults{
		FlipEvery:     3,
		TruncateEvery: 5,
		DelayEvery:    7,
		// Flips land in a line's opening bytes, so every flip is detectably
		// corrupt (undecodable line or envelope integrity failure) instead
		// of a silent heartbeat mutation.
		FlipWithin: 6,
		DelayMax:   5 * time.Millisecond,
		// Fault only the healthy worker's result streams: the victim and
		// the tarpit supply their own failure modes.
		Match: func(r *http.Request) bool {
			return r.URL.Host == healthy.host() && r.URL.Path == "/run"
		},
	})
	coord, err := dist.NewCoordinator(dist.Config{
		Workers:        []string{healthy.url, victim.url, tarpit.url},
		Client:         &http.Client{Transport: tr},
		LeaseTimeout:   600 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
		MaxWorkerFails: 2,
		MaxCorrupt:     4,
		Backoff:        runner.RetryPolicy{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond},
	})
	if err != nil {
		fail("phase 3: %v", err)
	}
	if err := coord.Check(context.Background()); err != nil {
		fail("phase 3: fleet handshake: %v", err)
	}

	type campaign struct {
		results []runner.Result
		err     error
	}
	done := make(chan campaign, 1)
	go func() {
		res, rerr := runner.Execute(context.Background(), specs, runner.Options{
			Parallel: 3, Observe: true, Backend: coord,
		})
		done <- campaign{res, rerr}
	}()

	// SIGKILL the victim once the campaign is demonstrably underway.
	killed := false
	timeout := time.After(180 * time.Second)
	var out campaign
wait:
	for {
		select {
		case out = <-done:
			break wait
		case <-timeout:
			fail("phase 3: campaign did not finish in time (fleet: %+v)", coord.Fleet())
		case <-time.After(5 * time.Millisecond):
			if !killed && coord.Fleet().Leases >= 3 {
				victim.kill()
				killed = true
				fmt.Println("chaos: phase 3: SIGKILLed a worker mid-campaign")
			}
		}
	}
	if !killed {
		fail("phase 3: campaign finished before the kill landed (grid too small)")
	}
	if out.err != nil {
		fail("phase 3: distributed campaign failed: %v", out.err)
	}
	for i := range specs {
		if canonicalJSON(out.results[i].Run) != canonicalJSON(baseline[i].Run) {
			fail("phase 3: spec %d run diverged from the clean local baseline", i)
		}
		if canonicalJSON(out.results[i].Manifest) != canonicalJSON(baseline[i].Manifest) {
			fail("phase 3: spec %d manifest diverged from the clean local baseline", i)
		}
	}

	fs := coord.Fleet()
	if fs.Expired < 1 {
		fail("phase 3: no lease expired despite the hung worker: %+v", fs)
	}
	if fs.Reassigns < 1 {
		fail("phase 3: no lease was reassigned: %+v", fs)
	}
	if fs.WorkersLost < 1 {
		fail("phase 3: no worker was lost despite the kill: %+v", fs)
	}
	if fs.Corrupt < 1 {
		fail("phase 3: the corrupting link produced no rejected envelope: %+v", fs)
	}
	if tr.Injected(faultkit.NetFlip) < 1 {
		fail("phase 3: the transport never flipped a bit")
	}

	// The monitor serves the same fleet view on /workers.
	rec := httptest.NewRecorder()
	monitor.Handler(monitor.Source{Fleet: coord}).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/workers", nil))
	var snap dist.FleetSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		fail("phase 3: /workers is not JSON: %v", err)
	}
	if len(snap.Workers) != 3 {
		fail("phase 3: /workers lists %d workers, want 3", len(snap.Workers))
	}
	fmt.Printf("chaos: phase 3: OK (results byte-identical; %d leases, %d expired, %d reassigned, %d corrupt, %d workers lost, %d bit flips injected)\n",
		fs.Leases, fs.Expired, fs.Reassigns, fs.Corrupt, fs.WorkersLost, tr.Injected(faultkit.NetFlip))
}

// workerChild is a re-exec'd worker process under the parent's control.
type workerChild struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	url   string
}

func startWorkerChild(hang bool) *workerChild {
	exe, err := os.Executable()
	if err != nil {
		fail("%v", err)
	}
	args := []string{"-worker-child"}
	if hang {
		args = append(args, "-hang")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		fail("%v", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fail("starting worker child: %v", err)
	}
	rd := bufio.NewReader(stdout)
	line, err := rd.ReadString('\n')
	if err != nil {
		fail("worker child handshake: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "chaos-worker: listening on "))
	if addr == "" || addr == strings.TrimSpace(line) {
		fail("worker child handshake line %q", line)
	}
	go io.Copy(io.Discard, rd)
	return &workerChild{cmd: cmd, stdin: stdin, url: "http://" + addr}
}

func (c *workerChild) host() string { return strings.TrimPrefix(c.url, "http://") }

// kill is the kill -9 model: no shutdown, no FIN on open streams.
func (c *workerChild) kill() { c.cmd.Process.Kill() }

func (c *workerChild) stop() {
	c.stdin.Close()
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// runWorkerChild serves the worker protocol until the parent goes away.
func runWorkerChild(hang bool) {
	// The parent holds our stdin pipe; when it exits — success, failure,
	// or its own kill — the pipe closes and we leave. No leaked workers.
	go func() {
		io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	var hook func(ctx context.Context, job, attempt int) error
	if hang {
		hook = func(ctx context.Context, job, attempt int) error {
			<-ctx.Done()
			return ctx.Err()
		}
	}
	wk := dist.NewWorker(dist.WorkerOptions{Slots: 2, FaultHook: hook})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("worker child: %v", err)
	}
	fmt.Printf("chaos-worker: listening on %s\n", ln.Addr())
	if err := http.Serve(ln, wk.Handler()); err != nil {
		fail("worker child: %v", err)
	}
	os.Exit(0)
}

// canonicalJSON renders v canonically (marshal → generic unmarshal →
// marshal), erasing the struct-vs-map difference the wire introduces in
// interface-typed fields, so equality means byte equality.
func canonicalJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		fail("encoding for comparison: %v", err)
	}
	var g interface{}
	if err := json.Unmarshal(b, &g); err != nil {
		fail("re-decoding for comparison: %v", err)
	}
	b2, err := json.Marshal(g)
	if err != nil {
		fail("re-encoding for comparison: %v", err)
	}
	return string(b2)
}

func assertCounter(reg *obs.Registry, name string, want uint64) {
	if got := reg.Counter(name).Value(); got != want {
		fail("%s = %d, want %d", name, got, want)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "chaos: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
