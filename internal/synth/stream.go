package synth

import (
	"fdp/internal/program"
	"fdp/internal/xrand"
)

// branchState is the mutable per-site runtime state of a behaviour model.
type branchState struct {
	rng     xrand.SplitMix64 // biased draws and markov switches
	pos     int32            // loop iteration / pattern position
	curTrip int32            // loop: trip count for the current activation
	cur     int32            // indirect: index of the current target
}

// Stream executes a workload's behaviour models, producing the
// architecturally-correct dynamic instruction sequence. It implements
// program.Stream. Streams are infinite: when the entry function returns
// with an empty call stack the program restarts at the entry point.
//
// Oracle side-channels (PeekDirection, PeekTarget) expose the *next*
// outcome of a site without advancing it; they exist solely to implement
// the paper's idealized predictors ("perfect direction", "Perfect All").
type Stream struct {
	w     *Workload
	pc    uint64
	state []branchState
	stack []uint64

	// Executed counts dynamic instructions delivered by Next.
	Executed uint64
}

// NewStream creates a fresh deterministic execution of the workload.
// Streams created from the same workload are identical.
func (w *Workload) NewStream() *Stream {
	s := &Stream{
		w:     w,
		pc:    w.entry,
		state: make([]branchState, len(w.info)),
		stack: make([]uint64, 0, 64),
	}
	for i := range w.info {
		bi := &w.info[i]
		if bi.kind == behNone {
			continue
		}
		s.state[i].rng.Seed(xrand.Mix(w.Seed ^ uint64(i)*0x9e37_79b9))
		if bi.kind == behLoop {
			s.state[i].curTrip = s.drawTrip(bi, &s.state[i])
		}
	}
	return s
}

// Image returns the static image the stream executes from.
func (s *Stream) Image() *program.Image { return s.w.Image() }

// PC returns the address of the next instruction Next will return.
func (s *Stream) PC() uint64 { return s.pc }

// Depth returns the current call-stack depth.
func (s *Stream) Depth() int { return len(s.stack) }

func (s *Stream) idx(pc uint64) int {
	return int((pc - imageBase) / program.InstBytes)
}

func (s *Stream) drawTrip(bi *branchInfo, st *branchState) int32 {
	t := bi.trip
	if bi.tripVar > 0 {
		t += int32(st.rng.Intn(int(2*bi.tripVar+1))) - bi.tripVar
	}
	if t < 2 {
		t = 2
	}
	return t
}

// Next returns the next executed instruction and advances the stream.
func (s *Stream) Next() program.DynInst {
	si, ok := s.w.img.At(s.pc)
	if !ok {
		panic("synth: stream PC escaped image") // generator invariant
	}
	d := program.DynInst{SI: si}
	switch si.Type {
	case program.NonBranch:
		d.NextPC = si.FallThrough()
	case program.CondDirect:
		taken := s.stepCond(s.idx(s.pc))
		d.Taken = taken
		if taken {
			d.NextPC = si.Target
		} else {
			d.NextPC = si.FallThrough()
		}
	case program.Jump:
		d.Taken = true
		d.NextPC = si.Target
	case program.Call:
		d.Taken = true
		d.NextPC = si.Target
		s.stack = append(s.stack, si.FallThrough())
	case program.IndJump:
		d.Taken = true
		d.NextPC = s.stepIndirect(s.idx(s.pc))
	case program.IndCall:
		d.Taken = true
		d.NextPC = s.stepIndirect(s.idx(s.pc))
		s.stack = append(s.stack, si.FallThrough())
	case program.Return:
		d.Taken = true
		if n := len(s.stack); n > 0 {
			d.NextPC = s.stack[n-1]
			s.stack = s.stack[:n-1]
		} else {
			d.NextPC = s.w.entry // program outer loop
		}
	}
	s.pc = d.NextPC
	s.Executed++
	return d
}

// Advance executes n instructions without returning them — the restart
// path of checkpointed warmup, which must replay the behaviour models
// (every RNG draw, loop position and stack operation) to reach the same
// stream state a full execution would, but needs none of the DynInsts.
func (s *Stream) Advance(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Next()
	}
}

// stepCond advances the conditional behaviour at image index i and returns
// the direction.
func (s *Stream) stepCond(i int) bool {
	bi := &s.w.info[i]
	st := &s.state[i]
	switch bi.kind {
	case behBiased:
		return st.rng.Bool(bi.p)
	case behLoop:
		st.pos++
		if st.pos < st.curTrip {
			return true
		}
		st.pos = 0
		st.curTrip = s.drawTrip(bi, st)
		return false
	case behPattern:
		taken := bi.pattern>>uint(st.pos)&1 == 1
		st.pos++
		if st.pos >= int32(bi.patLen) {
			st.pos = 0
		}
		return taken
	default:
		// Degenerate site (e.g. generated with kind behNone); treat as
		// never taken so execution still progresses.
		return false
	}
}

// stepIndirect advances the indirect behaviour at image index i and
// returns the chosen target.
func (s *Stream) stepIndirect(i int) uint64 {
	bi := &s.w.info[i]
	st := &s.state[i]
	if len(bi.targets) == 1 {
		return bi.targets[0]
	}
	if bi.kind == behRotate {
		st.cur = (st.cur + 1) % int32(len(bi.targets))
		return bi.targets[st.cur]
	}
	if !st.rng.Bool(bi.stay) {
		st.cur = int32(st.rng.Intn(len(bi.targets)))
	}
	return bi.targets[st.cur]
}

// PeekDirection returns the direction the conditional branch at pc would
// take on its next execution, without advancing its state. It reports
// false for unknown sites. This is the oracle used by the "perfect
// direction predictor" configuration.
func (s *Stream) PeekDirection(pc uint64) bool {
	if !s.w.img.Contains(pc) {
		return false
	}
	i := s.idx(pc)
	bi := &s.w.info[i]
	st := &s.state[i]
	switch bi.kind {
	case behBiased:
		clone := st.rng // value copy
		return clone.Bool(bi.p)
	case behLoop:
		return st.pos+1 < st.curTrip
	case behPattern:
		return bi.pattern>>uint(st.pos)&1 == 1
	}
	return false
}

// PeekTarget returns the target the indirect branch at pc would choose on
// its next execution, without advancing its state. ok is false for
// non-indirect sites. This is the oracle used by "Perfect All".
func (s *Stream) PeekTarget(pc uint64) (uint64, bool) {
	if !s.w.img.Contains(pc) {
		return 0, false
	}
	i := s.idx(pc)
	bi := &s.w.info[i]
	if (bi.kind != behIndirect && bi.kind != behRotate) || len(bi.targets) == 0 {
		return 0, false
	}
	st := &s.state[i]
	if len(bi.targets) == 1 {
		return bi.targets[0], true
	}
	if bi.kind == behRotate {
		return bi.targets[(st.cur+1)%int32(len(bi.targets))], true
	}
	clone := st.rng
	cur := st.cur
	if !clone.Bool(bi.stay) {
		cur = int32(clone.Intn(len(bi.targets)))
	}
	return bi.targets[cur], true
}

// PeekReturnTarget returns the address the next executed Return will jump
// to (top of the architectural call stack, or the entry on underflow).
func (s *Stream) PeekReturnTarget() uint64 {
	if n := len(s.stack); n > 0 {
		return s.stack[n-1]
	}
	return s.w.entry
}
