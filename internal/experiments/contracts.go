package experiments

import (
	"fmt"

	"fdp/internal/repro"
	"fdp/internal/runner"
)

// Contracts returns the declarative reproduction contracts: one per
// scored artifact, each defined next to the figure it scores
// (contractFig7 next to Fig7, ...). This registry is the single source
// of truth for every shape threshold — TestHeadlineShapes, `report
// -score` and the `make repro-check` CI gate all evaluate exactly these
// expectations. See docs/CALIBRATION.md before adding or loosening one.
func Contracts() []repro.Contract {
	return []repro.Contract{
		contractFig6a(),
		contractFig7(),
		contractFig8(),
		contractTab2(),
		contractFig12(),
		contractFig14(),
		contractShape(),
	}
}

// Score runs every contract's grid at the given scale and evaluates the
// expectations, returning the scorecard. Contract grids share the
// baseline and FDP configs, so Score installs an in-memory result cache
// when the caller did not provide one — the shared specs then simulate
// once per campaign instead of once per contract.
func Score(opts Options) (*repro.Scorecard, error) {
	if opts.Cache == nil {
		cache, err := runner.NewCache(runner.DefaultCacheCapacity, "")
		if err != nil {
			return nil, err
		}
		opts.Cache = cache
	}
	card := &repro.Scorecard{
		Schema: repro.ScorecardSchema,
		Scale: fmt.Sprintf("%d workloads, %d warmup + %d measured insts",
			len(opts.Workloads), opts.Warmup, opts.Measure),
	}
	for _, c := range Contracts() {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		copts := opts
		if len(c.Workloads) > 0 {
			// The contract brings its own suite (ext-shape's spec grid);
			// scale-dependent budgets still come from the campaign opts.
			copts.Workloads = c.Workloads
		}
		sets, err := runGrid(copts, c.Configs)
		if err != nil {
			return nil, fmt.Errorf("score %s: %w", c.Artifact, err)
		}
		card.Artifacts = append(card.Artifacts, c.Eval(sets))
	}
	return card, nil
}
