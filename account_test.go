package fdp

import (
	"bytes"
	"testing"

	"fdp/internal/obs"
)

// TestAccountingConservation asserts the top-down cycle-accounting
// invariants on every golden workload: the bucket sum equals the measured
// cycle count exactly (every cycle is attributed to exactly one bucket),
// the non-delivering buckets decompose StarvationCycles, and delivering
// is its complement.
func TestAccountingConservation(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			w := WorkloadByName(c.workload)
			r, err := Simulate(c.cfg, w, c.warmup, c.measure)
			if err != nil {
				t.Fatal(err)
			}
			var sum uint64
			for _, n := range r.Acct {
				sum += n
			}
			if sum != r.Cycles {
				t.Errorf("bucket sum %d != measured cycles %d", sum, r.Cycles)
			}
			if stalled := sum - r.Acct[obs.AcctDelivering]; stalled != r.StarvationCycles {
				t.Errorf("non-delivering buckets sum to %d, want StarvationCycles %d",
					stalled, r.StarvationCycles)
			}
			if r.Acct[obs.AcctDelivering] != r.Cycles-r.StarvationCycles {
				t.Errorf("delivering = %d, want cycles - starvation = %d",
					r.Acct[obs.AcctDelivering], r.Cycles-r.StarvationCycles)
			}
			// The manifest counter family must round-trip the vector.
			counters := r.Counters()
			v, ok := obs.AcctVector(counters)
			if !ok {
				t.Fatal("Counters() does not carry the full acct.* family")
			}
			if v != r.Acct {
				t.Errorf("AcctVector(Counters()) = %v, want %v", v, r.Acct)
			}
		})
	}
}

// TestAccountingNonTrivial guards against a degenerate classifier: on the
// default FDP config over a frontend-bound workload, both delivering and
// L1I-miss-starved cycles must appear, and a misprediction-prone run must
// charge flush recovery.
func TestAccountingNonTrivial(t *testing.T) {
	c := goldenCases()[0]
	w := WorkloadByName(c.workload)
	r, err := Simulate(c.cfg, w, c.warmup, c.measure)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{obs.AcctDelivering, obs.AcctL1IMissStarved, obs.AcctFlushRecovery} {
		if r.Acct[b] == 0 {
			t.Errorf("bucket %s is zero on %s — classifier degenerate?",
				obs.AcctBucketNames[b], c.workload)
		}
	}
	if r.AcctTotal() != r.Cycles {
		t.Errorf("AcctTotal() = %d, want %d", r.AcctTotal(), r.Cycles)
	}
	var shares float64
	for b := range r.Acct {
		shares += r.AcctShare(b)
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("bucket shares sum to %v, want 1", shares)
	}
}

// TestIntervalsPartitionRun asserts the interval time-series is an exact
// partition of the measured region: per-record window lengths equal the
// accounting vector sum, and summing every record's deltas reproduces the
// end-of-run totals (instructions, L1I misses, accounting vector).
func TestIntervalsPartitionRun(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			const every = 5000
			w := WorkloadByName(c.workload)
			p := NewProbes()
			p.EnableIntervals(every)
			r, err := SimulateObserved(c.cfg, w, c.warmup, c.measure, p)
			if err != nil {
				t.Fatal(err)
			}
			recs := p.Intervals.Records()
			if len(recs) == 0 {
				t.Fatal("no interval records")
			}
			var insts, misses uint64
			var acct [obs.NumAcctBuckets]uint64
			prevCycle := uint64(0)
			for i, rec := range recs {
				if i > 0 && rec.Cycle-prevCycle != rec.Cycles() && i != len(recs)-1 {
					t.Errorf("record %d: cycle delta %d != window length %d",
						i, rec.Cycle-prevCycle, rec.Cycles())
				}
				prevCycle = rec.Cycle
				insts += rec.Instructions
				misses += rec.L1IMisses
				for b := range rec.Acct {
					acct[b] += rec.Acct[b]
				}
			}
			if insts != r.Instructions {
				t.Errorf("interval instructions sum %d != run instructions %d", insts, r.Instructions)
			}
			if misses != r.L1IMisses {
				t.Errorf("interval L1I misses sum %d != run misses %d", misses, r.L1IMisses)
			}
			if acct != r.Acct {
				t.Errorf("interval accounting sum %v != run accounting %v", acct, r.Acct)
			}

			// The windows must cover the measurement exactly: sum of window
			// lengths == measured cycles.
			var cov uint64
			for _, rec := range recs {
				cov += rec.Cycles()
			}
			if cov != r.Cycles {
				t.Errorf("interval windows cover %d cycles, run measured %d", cov, r.Cycles)
			}

			// And the JSONL codec round-trips the whole series.
			var buf bytes.Buffer
			if err := obs.WriteRunIntervals(&buf, c.name, every, recs); err != nil {
				t.Fatal(err)
			}
			back, err := obs.ReadIntervalJSONL(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(back) != len(recs) {
				t.Fatalf("round trip lost records: %d != %d", len(back), len(recs))
			}
			for i := range recs {
				if back[i] != recs[i] {
					t.Errorf("record %d changed in round trip", i)
				}
			}
		})
	}
}

// TestIntervalManifestCounters checks that an interval-enabled run's
// manifest reports the interval.every / interval.records counters.
func TestIntervalManifestCounters(t *testing.T) {
	c := goldenCases()[0]
	w := WorkloadByName(c.workload)
	p := NewProbes()
	p.EnableIntervals(10_000)
	r, err := SimulateObserved(c.cfg, w, c.warmup, c.measure, p)
	if err != nil {
		t.Fatal(err)
	}
	m := RunManifest(c.cfg, w, r, p, c.warmup, c.measure)
	if m.Counters["interval.every"] != 10_000 {
		t.Errorf("interval.every = %d", m.Counters["interval.every"])
	}
	if got := m.Counters["interval.records"]; got != uint64(len(p.Intervals.Records())) || got == 0 {
		t.Errorf("interval.records = %d, recorder has %d", got, len(p.Intervals.Records()))
	}
}
