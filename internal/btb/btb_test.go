package btb

import (
	"testing"
	"testing/quick"

	"fdp/internal/program"
)

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct{ entries, ways int }{
		{0, 4}, {16, 0}, {15, 4}, {12, 4}, // 3 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.entries, tc.ways)
				}
			}()
			New(tc.entries, tc.ways)
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	b := New(1024, 4)
	pc := uint64(0x40_0010)
	if _, _, ok := b.Lookup(pc); ok {
		t.Fatal("hit in empty BTB")
	}
	b.Insert(pc, program.CondDirect, 0x40_1000)
	ty, tgt, ok := b.Lookup(pc)
	if !ok || ty != program.CondDirect || tgt != 0x40_1000 {
		t.Fatalf("Lookup = %v %#x %v", ty, tgt, ok)
	}
	if b.Lookups() != 2 || b.Hits() != 1 {
		t.Errorf("stats: %d/%d", b.Hits(), b.Lookups())
	}
}

func TestDistinctBranchesInSame16BBlock(t *testing.T) {
	b := New(1024, 4)
	// Two branches 4 bytes apart: same set (16B-indexed), distinct tags.
	b.Insert(0x1000, program.Jump, 0x2000)
	b.Insert(0x1004, program.Call, 0x3000)
	ty, tgt, ok := b.Lookup(0x1000)
	if !ok || ty != program.Jump || tgt != 0x2000 {
		t.Errorf("first branch: %v %#x %v", ty, tgt, ok)
	}
	ty, tgt, ok = b.Lookup(0x1004)
	if !ok || ty != program.Call || tgt != 0x3000 {
		t.Errorf("second branch: %v %#x %v", ty, tgt, ok)
	}
}

func TestInsertUpdatesExistingTarget(t *testing.T) {
	b := New(64, 4)
	b.Insert(0x100, program.IndJump, 0x200)
	b.Insert(0x100, program.IndJump, 0x300) // new indirect target
	_, tgt, _ := b.Lookup(0x100)
	if tgt != 0x300 {
		t.Errorf("target = %#x, want updated 0x300", tgt)
	}
	if b.Inserts != 1 {
		t.Errorf("Inserts = %d, want 1 (update is not an insert)", b.Inserts)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	b := New(8, 2) // 4 sets, 2 ways; set = (pc>>4)&3
	// Three branches mapping to set 0: blocks 0x00, 0x40, 0x80.
	b.Insert(0x00, program.Jump, 1)
	b.Insert(0x40, program.Jump, 2)
	b.Lookup(0x00) // refresh 0x00
	b.Insert(0x80, program.Jump, 3)
	if !b.Peek(0x00) {
		t.Error("MRU entry evicted")
	}
	if b.Peek(0x40) {
		t.Error("LRU entry survived")
	}
	if b.Replacements != 1 {
		t.Errorf("Replacements = %d", b.Replacements)
	}
}

func TestPeekQuiet(t *testing.T) {
	b := New(64, 4)
	b.Insert(0x10, program.Jump, 0x20)
	before := b.Lookups()
	if !b.Peek(0x10) || b.Peek(0x14) {
		t.Error("Peek wrong")
	}
	if b.Lookups() != before {
		t.Error("Peek counted a lookup")
	}
}

func TestResetAndResetStats(t *testing.T) {
	b := New(64, 4)
	b.Insert(0x10, program.Jump, 0x20)
	b.Lookup(0x10)
	b.ResetStats()
	if b.Lookups() != 0 || b.Hits() != 0 {
		t.Error("ResetStats left counters")
	}
	if !b.Peek(0x10) {
		t.Error("ResetStats dropped contents")
	}
	b.Reset()
	if b.Peek(0x10) {
		t.Error("Reset kept contents")
	}
}

// Property: inserted branches are immediately findable with their exact
// type and target.
func TestInsertLookupProperty(t *testing.T) {
	f := func(raw uint32, tyRaw uint8, tgt uint64) bool {
		b := New(256, 4)
		pc := uint64(raw) &^ 3
		ty := program.InstType(tyRaw % uint8(program.NumInstTypes))
		b.Insert(pc, ty, tgt)
		gotTy, gotTgt, ok := b.Lookup(pc)
		return ok && gotTy == ty && gotTgt == tgt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityPressure(t *testing.T) {
	b := New(64, 4)
	// Insert 1000 distinct branches; capacity stays bounded and the most
	// recent ones survive.
	for i := 0; i < 1000; i++ {
		b.Insert(uint64(i)*4, program.CondDirect, uint64(i))
	}
	live := 0
	for i := 0; i < 1000; i++ {
		if b.Peek(uint64(i) * 4) {
			live++
		}
	}
	if live > 64 {
		t.Errorf("%d live entries exceed capacity 64", live)
	}
	if !b.Peek(999 * 4) {
		t.Error("most recent insert missing")
	}
	if b.Entries() != 64 {
		t.Errorf("Entries = %d", b.Entries())
	}
}

func TestPerfectBTB(t *testing.T) {
	img := program.NewImage(0x1000)
	img.Append(program.NonBranch)
	jpc := img.Append(program.Jump)
	img.SetTarget(jpc, 0x1000)
	rpc := img.Append(program.Return)
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	p := NewPerfect(img)
	if _, _, ok := p.Lookup(0x1000); ok {
		t.Error("perfect BTB hit on non-branch")
	}
	ty, tgt, ok := p.Lookup(jpc)
	if !ok || ty != program.Jump || tgt != 0x1000 {
		t.Errorf("jump: %v %#x %v", ty, tgt, ok)
	}
	ty, _, ok = p.Lookup(rpc)
	if !ok || ty != program.Return {
		t.Errorf("return: %v %v", ty, ok)
	}
	// Outside the image: miss, no panic.
	if _, _, ok := p.Lookup(0xdead_0000); ok {
		t.Error("hit outside image")
	}
	if p.Lookups() != 4 || p.Hits() != 2 {
		t.Errorf("stats %d/%d", p.Hits(), p.Lookups())
	}
	p.Insert(0x1000, program.Jump, 0) // direct insert: no-op, no panic
	p.ResetStats()
	if p.Lookups() != 0 {
		t.Error("ResetStats failed")
	}
	if p.Name() != "perfect-btb" {
		t.Errorf("Name = %s", p.Name())
	}
}

func TestPerfectBTBTracksIndirectTargets(t *testing.T) {
	img := program.NewImage(0x1000)
	ipc := img.Append(program.IndCall)
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	p := NewPerfect(img)
	ty, tgt, ok := p.Lookup(ipc)
	if !ok || ty != program.IndCall || tgt != 0 {
		t.Fatalf("cold indirect lookup: %v %#x %v", ty, tgt, ok)
	}
	p.Insert(ipc, program.IndCall, 0x4000)
	if _, tgt, _ := p.Lookup(ipc); tgt != 0x4000 {
		t.Errorf("indirect target not tracked: %#x", tgt)
	}
	p.Insert(ipc, program.IndCall, 0x5000)
	if _, tgt, _ := p.Lookup(ipc); tgt != 0x5000 {
		t.Errorf("indirect target not updated: %#x", tgt)
	}
}

func TestTwoLevelLookupAndPromotion(t *testing.T) {
	tl := NewTwoLevel(8, 2, 1024, 4)
	pc := uint64(0x40_0000)
	if _, _, ok := tl.Lookup(pc); ok {
		t.Fatal("hit in empty two-level BTB")
	}
	tl.Insert(pc, program.Jump, 0x5000)
	// First lookup: L1 hit (Insert fills both levels).
	if _, _, ok := tl.Lookup(pc); !ok || tl.LastFromL2 {
		t.Errorf("expected L1 hit: ok=%v fromL2=%v", ok, tl.LastFromL2)
	}
	// Thrash the tiny L1 so pc falls back to the L2.
	for i := uint64(1); i <= 64; i++ {
		tl.Insert(pc+i*16, program.Jump, 0x6000)
	}
	ty, tgt, ok := tl.Lookup(pc)
	if !ok || ty != program.Jump || tgt != 0x5000 {
		t.Fatalf("L2 lookup failed: %v %#x %v", ty, tgt, ok)
	}
	if !tl.LastFromL2 {
		t.Error("L2-served hit not flagged")
	}
	if tl.Promotions == 0 {
		t.Error("no promotion recorded")
	}
	// Promoted: next lookup is an L1 hit again.
	if _, _, ok := tl.Lookup(pc); !ok || tl.LastFromL2 {
		t.Error("promotion did not land in L1")
	}
}

func TestTwoLevelStats(t *testing.T) {
	tl := NewTwoLevel(8, 2, 64, 4)
	tl.Insert(0x10, program.Call, 0x20)
	tl.Lookup(0x10)
	tl.Lookup(0x9999000)
	if tl.Lookups() != 2 || tl.Hits() != 1 {
		t.Errorf("stats %d/%d", tl.Hits(), tl.Lookups())
	}
	tl.ResetStats()
	if tl.Lookups() != 0 || tl.Promotions != 0 {
		t.Error("ResetStats incomplete")
	}
	if tl.Name() != "btb-2level" {
		t.Errorf("Name = %s", tl.Name())
	}
	if tl.L1() == nil || tl.L2() == nil {
		t.Error("level accessors nil")
	}
}

func TestInsertColdDoesNotEvictHotEntries(t *testing.T) {
	b := New(8, 2) // 4 sets, 2 ways
	// Two hot branches in set 0, both looked up (MRU).
	b.Insert(0x00, program.Jump, 1)
	b.Insert(0x40, program.Jump, 2)
	b.Lookup(0x00)
	b.Lookup(0x40)
	// Cold-insert a third branch into the same set: it replaces the LRU
	// (0x00 was refreshed first so 0x00 is LRU among the two).
	b.InsertCold(0x80, program.CondDirect, 3)
	if !b.Peek(0x80) {
		t.Error("cold insert absent")
	}
	// Another cold insert replaces the previous cold entry, not 0x40.
	b.InsertCold(0xc0, program.CondDirect, 4)
	if b.Peek(0x80) {
		t.Error("cold entry survived a second cold insert")
	}
	if !b.Peek(0x40) {
		t.Error("hot entry evicted by cold inserts")
	}
}

func TestInsertColdRefreshesExisting(t *testing.T) {
	b := New(8, 2)
	b.Insert(0x10, program.IndJump, 0x100)
	b.InsertCold(0x10, program.IndJump, 0x200)
	_, tgt, _ := b.Lookup(0x10)
	if tgt != 0x200 {
		t.Errorf("target = %#x, want refreshed 0x200", tgt)
	}
}

func TestInsertColdPromotionByLookup(t *testing.T) {
	b := New(2, 2) // 1 set, 2 ways
	b.InsertCold(0x00, program.Jump, 1)
	b.Lookup(0x00) // promote
	b.InsertCold(0x40, program.Jump, 2)
	b.InsertCold(0x80, program.Jump, 3) // replaces 0x40, not promoted 0x00
	if !b.Peek(0x00) {
		t.Error("promoted cold entry evicted")
	}
}

func TestBasicBlockLookupInsert(t *testing.T) {
	bb := NewBasicBlock(1024, 4)
	start := uint64(0x40_0000)
	if _, _, _, ok := bb.Lookup(start); ok {
		t.Fatal("hit in empty BB-BTB")
	}
	bb.Insert(start, 5, program.CondDirect, 0x40_2000)
	size, ty, tgt, ok := bb.Lookup(start)
	if !ok || size != 5 || ty != program.CondDirect || tgt != 0x40_2000 {
		t.Fatalf("Lookup = %d %v %#x %v", size, ty, tgt, ok)
	}
	// Refresh with a new size (block re-learned).
	bb.Insert(start, 3, program.CondDirect, 0x40_2000)
	size, _, _, _ = bb.Lookup(start)
	if size != 3 {
		t.Errorf("size = %d after refresh", size)
	}
	if bb.Lookups() != 3 || bb.Hits() != 2 {
		t.Errorf("stats %d/%d", bb.Hits(), bb.Lookups())
	}
}

func TestBasicBlockSizeClamp(t *testing.T) {
	bb := NewBasicBlock(64, 4)
	bb.Insert(0x100, 1000, program.Jump, 0x200)
	size, _, _, ok := bb.Lookup(0x100)
	if !ok || size != MaxBlockSize {
		t.Errorf("size = %d, want clamp to %d", size, MaxBlockSize)
	}
	bb.Insert(0x200, 0, program.Jump, 0x300) // ignored
	if _, _, _, ok := bb.Lookup(0x200); ok {
		t.Error("zero-size insert accepted")
	}
}

func TestBasicBlockEvictionAndReset(t *testing.T) {
	bb := NewBasicBlock(8, 2)
	for i := uint64(0); i < 64; i++ {
		bb.Insert(i*4, 2, program.Jump, 0)
	}
	if bb.Replacements == 0 {
		t.Error("no replacements under pressure")
	}
	bb.ResetStats()
	if bb.Lookups() != 0 || bb.Inserts != 0 {
		t.Error("ResetStats incomplete")
	}
	if bb.Entries() != 8 {
		t.Errorf("Entries = %d", bb.Entries())
	}
	if EntryBits() <= 56 { // must exceed the ~7-byte instruction entry
		t.Errorf("EntryBits = %d", EntryBits())
	}
}

func TestBasicBlockBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	NewBasicBlock(12, 4)
}
