package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// IntervalRecord is one interval time-series sample: the cycle-accounting
// vector plus key deltas over one fixed-length cycle window. All fields
// except Cycle and FTQOcc are deltas since the previous snapshot, so the
// records of a run sum to the run's end-of-run counters; the window
// length is the sum of the accounting vector (the buckets partition the
// window's cycles).
type IntervalRecord struct {
	// Cycle is the absolute core cycle at which the snapshot was taken.
	Cycle uint64
	// Instructions is the number of instructions retired in the window.
	Instructions uint64
	// Acct is the per-bucket cycle count of the window (see
	// AcctBucketNames); its sum is the window length in cycles.
	Acct [NumAcctBuckets]uint64
	// L1IMisses is the number of demand L1I misses in the window.
	L1IMisses uint64
	// FTQOcc is the instantaneous FTQ occupancy at the snapshot.
	FTQOcc uint64
}

// Cycles returns the window length (the accounting vector is a partition
// of the window's cycles).
func (r *IntervalRecord) Cycles() uint64 {
	var n uint64
	for _, v := range r.Acct {
		n += v
	}
	return n
}

// IPC returns the window's instructions per cycle (0 for an empty
// window).
func (r *IntervalRecord) IPC() float64 {
	c := r.Cycles()
	if c == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(c)
}

// L1IMPKI returns the window's demand L1I misses per kilo-instruction
// (0 when no instructions retired).
func (r *IntervalRecord) L1IMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.L1IMisses) / float64(r.Instructions)
}

// IntervalTee receives interval snapshots the moment they are recorded,
// before the run completes. It is how a live consumer (the monitor's
// IntervalStore) observes a running simulation; the recorder's own
// buffer stays the source of truth for the end-of-run JSONL sink. The
// tee must be safe for calls from the simulation goroutine.
type IntervalTee interface {
	// RecordInterval mirrors IntervalRecorder.Record.
	RecordInterval(IntervalRecord)
	// ResetIntervals mirrors IntervalRecorder.Reset (the warmup/measure
	// boundary discard).
	ResetIntervals()
}

// IntervalRecorder collects interval snapshots for one run. Like the
// tracer it belongs to a single run and goroutine; Record appends (the
// backing slice grows amortized, nothing else allocates).
type IntervalRecorder struct {
	every uint64
	recs  []IntervalRecord
	tee   IntervalTee
}

// NewIntervalRecorder creates a recorder snapshotting every `every`
// cycles.
func NewIntervalRecorder(every uint64) *IntervalRecorder {
	if every == 0 {
		panic("obs: zero interval length")
	}
	return &IntervalRecorder{every: every}
}

// Every returns the snapshot interval in cycles (0 for a nil receiver,
// which disables snapshotting at the probe site).
func (r *IntervalRecorder) Every() uint64 {
	if r == nil {
		return 0
	}
	return r.every
}

// SetTee attaches a live consumer that is forwarded every Record and
// Reset from now on. Safe on a nil receiver; pass nil to detach.
func (r *IntervalRecorder) SetTee(t IntervalTee) {
	if r != nil {
		r.tee = t
	}
}

// Record appends one snapshot. Safe on a nil receiver (no-op).
func (r *IntervalRecorder) Record(rec IntervalRecord) {
	if r != nil {
		r.recs = append(r.recs, rec)
		if r.tee != nil {
			r.tee.RecordInterval(rec)
		}
	}
}

// Records returns the collected snapshots, oldest first.
func (r *IntervalRecorder) Records() []IntervalRecord {
	if r == nil {
		return nil
	}
	return r.recs
}

// Reset discards all collected snapshots (end of warmup).
func (r *IntervalRecorder) Reset() {
	if r != nil {
		r.recs = r.recs[:0]
		if r.tee != nil {
			r.tee.ResetIntervals()
		}
	}
}

// AppendIntervalJSONL appends the single-line JSON encoding of rec
// (without a trailing newline) to dst and returns it. The keys are
// compact: c = cycle, i = instructions, a = accounting vector,
// m = L1I misses, o = FTQ occupancy.
func AppendIntervalJSONL(dst []byte, rec IntervalRecord) []byte {
	dst = append(dst, `{"c":`...)
	dst = strconv.AppendUint(dst, rec.Cycle, 10)
	dst = append(dst, `,"i":`...)
	dst = strconv.AppendUint(dst, rec.Instructions, 10)
	dst = append(dst, `,"a":[`...)
	for b, v := range rec.Acct {
		if b > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, v, 10)
	}
	dst = append(dst, `],"m":`...)
	dst = strconv.AppendUint(dst, rec.L1IMisses, 10)
	dst = append(dst, `,"o":`...)
	dst = strconv.AppendUint(dst, rec.FTQOcc, 10)
	dst = append(dst, '}')
	return dst
}

// wireInterval is the JSONL representation of an IntervalRecord.
type wireInterval struct {
	C uint64   `json:"c"`
	I uint64   `json:"i"`
	A []uint64 `json:"a"`
	M uint64   `json:"m"`
	O uint64   `json:"o"`
}

// ParseIntervalRecord decodes one JSONL interval line. The accounting
// vector must have exactly NumAcctBuckets elements.
func ParseIntervalRecord(line []byte) (IntervalRecord, error) {
	var w wireInterval
	if err := json.Unmarshal(line, &w); err != nil {
		return IntervalRecord{}, fmt.Errorf("obs: bad interval line: %w", err)
	}
	if len(w.A) != NumAcctBuckets {
		return IntervalRecord{}, fmt.Errorf("obs: interval accounting vector has %d buckets, want %d", len(w.A), NumAcctBuckets)
	}
	rec := IntervalRecord{Cycle: w.C, Instructions: w.I, L1IMisses: w.M, FTQOcc: w.O}
	copy(rec.Acct[:], w.A)
	return rec, nil
}

// intervalHeader is the non-record marker line separating runs in a
// shared interval file.
type intervalHeader struct {
	Run   string `json:"run"`
	Every uint64 `json:"every,omitempty"`
}

// WriteRunIntervals writes a {"run": label, "every": N} header line
// followed by the records as JSONL. Multiple runs can share one file.
func WriteRunIntervals(w io.Writer, label string, every uint64, recs []IntervalRecord) error {
	hdr, err := json.Marshal(intervalHeader{Run: label, Every: every})
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	var line []byte
	for _, rec := range recs {
		line = AppendIntervalJSONL(line[:0], rec)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIntervalJSONL parses an interval stream produced by
// WriteRunIntervals, skipping run-header lines and blank lines.
func ReadIntervalJSONL(r io.Reader) ([]IntervalRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []IntervalRecord
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var hdr intervalHeader
		if err := json.Unmarshal(line, &hdr); err == nil && hdr.Run != "" {
			continue
		}
		rec, err := ParseIntervalRecord(line)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
