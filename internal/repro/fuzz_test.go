package repro

import (
	"bytes"
	"testing"
)

// FuzzScorecardJSON feeds arbitrary bytes to the scorecard decoder: it
// must never panic, and any document it accepts must re-encode and
// decode to the same bytes (the stability `reprocheck -json` consumers
// rely on).
func FuzzScorecardJSON(f *testing.F) {
	if seed, err := sampleScorecard().Encode(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema": 1, "artifacts": []}`))
	f.Add([]byte(`{"schema": 2}`))
	f.Add([]byte(`{"schema": 1, "artifacts": [{"artifact": "fig7", "outcomes": [{"id": "x", "status": "pass", "values": [{"config": "fdp", "value": 1.5, "finite": true}]}]}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		card, err := DecodeScorecard(data)
		if err != nil {
			return
		}
		b1, err := card.Encode()
		if err != nil {
			t.Fatalf("accepted scorecard failed to encode: %v", err)
		}
		again, err := DecodeScorecard(b1)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		b2, err := again.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical encoding not stable:\n%s\nvs\n%s", b1, b2)
		}
		// Rendering and tallying must also be total on any accepted doc.
		_ = card.String()
		_ = card.Summary()
		_ = card.HardFailures()
	})
}
