// Package ras implements the Return Address Stack: a fixed-depth circular
// stack of return addresses with cheap whole-state snapshots, used both
// speculatively by the prediction pipeline and architecturally by the
// backend (the backend copy is the recovery point on pipeline flushes).
package ras

// DefaultDepth is the standard RAS depth (Table IV).
const DefaultDepth = 32

// RAS is a circular return address stack. Pushing beyond the depth
// overwrites the oldest entry; popping an empty stack returns 0 and keeps
// the stack empty (a misprediction the core will discover at resolution).
type RAS struct {
	entries []uint64
	top     int // index of the most recent entry (valid when size > 0)
	size    int // logical occupancy, 0..depth

	// Pushes, Pops and Underflows are statistics counters.
	Pushes     uint64
	Pops       uint64
	Underflows uint64
}

// New creates a RAS with the given depth.
func New(depth int) *RAS {
	if depth <= 0 {
		panic("ras: non-positive depth")
	}
	return &RAS{entries: make([]uint64, depth)}
}

// Depth returns the stack capacity.
func (r *RAS) Depth() int { return len(r.entries) }

// Size returns the current logical occupancy.
func (r *RAS) Size() int { return r.size }

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.Pushes++
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = addr
	if r.size < len(r.entries) {
		r.size++
	}
}

// Pop removes and returns the most recent return address. An empty stack
// returns 0.
func (r *RAS) Pop() uint64 {
	r.Pops++
	if r.size == 0 {
		r.Underflows++
		return 0
	}
	addr := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.size--
	return addr
}

// Top returns the most recent return address without popping (0 if empty).
func (r *RAS) Top() uint64 {
	if r.size == 0 {
		return 0
	}
	return r.entries[r.top]
}

// Snapshot is a saved RAS state; the entries slice is reused across saves.
type Snapshot struct {
	entries []uint64
	top     int
	size    int
}

// Save copies the stack state into s.
func (r *RAS) Save(s *Snapshot) {
	if cap(s.entries) < len(r.entries) {
		s.entries = make([]uint64, len(r.entries))
	}
	s.entries = s.entries[:len(r.entries)]
	copy(s.entries, r.entries)
	s.top = r.top
	s.size = r.size
}

// Restore sets the stack back to a previously saved state (same depth
// required).
func (r *RAS) Restore(s *Snapshot) {
	copy(r.entries, s.entries)
	r.top = s.top
	r.size = s.size
}

// CopyFrom makes r identical to src (same depth required).
func (r *RAS) CopyFrom(src *RAS) {
	copy(r.entries, src.entries)
	r.top = src.top
	r.size = src.size
}

// Reset empties the stack and clears statistics.
func (r *RAS) Reset() {
	r.top, r.size = 0, 0
	r.Pushes, r.Pops, r.Underflows = 0, 0, 0
}
