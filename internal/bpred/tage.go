package bpred

import (
	"math"

	"fdp/internal/xrand"
)

// DirPredictor is a conditional-branch direction predictor. Predict is
// called speculatively in the prediction pipeline for *every* instruction
// (EV8-style, to produce FTQ direction hints); Update is called once per
// retired conditional branch with the architectural history the frontend
// would have had at prediction time.
type DirPredictor interface {
	// Predict returns the predicted direction of the instruction at pc
	// given the current global history.
	Predict(pc uint64, h *History) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, h *History, taken bool)
	// Specs returns the folded-history views the predictor needs; the
	// frontend registers them in its History before calling Bind.
	Specs() []FoldSpec
	// Bind tells the predictor where its folded registers start within
	// the shared History.
	Bind(base int)
	// Name identifies the predictor for reports.
	Name() string
	// StorageBits returns the predictor's storage budget in bits.
	StorageBits() int
}

// TAGETable describes one tagged TAGE component.
type TAGETable struct {
	HistLen int // history length in bits
	IdxBits int // log2(entries)
	TagBits int // tag width
}

// TAGEConfig sizes a TAGE predictor.
type TAGEConfig struct {
	Name        string
	Tables      []TAGETable
	BimodalBits int // log2(bimodal entries), 2-bit counters
}

// geometricTables builds n tagged tables with history lengths growing
// geometrically from minLen to maxLen.
func geometricTables(n, minLen, maxLen, idxBits int) []TAGETable {
	tables := make([]TAGETable, n)
	ratio := float64(maxLen) / float64(minLen)
	for i := 0; i < n; i++ {
		l := float64(minLen)
		if n > 1 {
			l = float64(minLen) * math.Pow(ratio, float64(i)/float64(n-1))
		}
		tag := 8 + i/2
		if tag > 12 {
			tag = 12
		}
		tables[i] = TAGETable{HistLen: int(l + 0.5), IdxBits: idxBits, TagBits: tag}
	}
	return tables
}

// TAGE9KB returns the half-size configuration of Fig. 12.
func TAGE9KB() TAGEConfig {
	return TAGEConfig{Name: "tage-9kb", Tables: geometricTables(10, 4, 260, 9), BimodalBits: 11}
}

// TAGE18KB returns the baseline predictor (Table IV): ten tagged tables
// with 4..260-bit geometric history lengths plus a 4K-entry bimodal base.
func TAGE18KB() TAGEConfig {
	return TAGEConfig{Name: "tage-18kb", Tables: geometricTables(10, 4, 260, 10), BimodalBits: 12}
}

// TAGE36KB returns the double-size configuration of Fig. 12.
func TAGE36KB() TAGEConfig {
	return TAGEConfig{Name: "tage-36kb", Tables: geometricTables(10, 4, 260, 11), BimodalBits: 13}
}

type tageEntry struct {
	tag uint16
	ctr int8  // signed 3-bit counter: -4..3, taken if >= 0
	u   uint8 // 2-bit usefulness
}

// tageTable is one tagged component with its index/tag constants
// precomputed, so the per-table probe of lookup — run for every predicted
// branch — reads one contiguous record instead of chasing the config and a
// slice-of-slices.
type tageTable struct {
	entries  []tageEntry
	idxMask  uint32
	tagMask  uint32
	idxShift uint8  // 2 + IdxBits, the pc shift mixed into the index
	salt     uint32 // per-table index perturbation (i * 0x9e37)
}

// TAGE is a TAgged GEometric-history-length direction predictor (Seznec),
// the paper's primary predictor. It registers three folded views per table
// (index, tag, tag') in the shared History.
type TAGE struct {
	cfg      TAGEConfig
	bimodal  []uint8 // 2-bit counters
	tables   []tageTable
	foldBase int
	useAlt   int8 // use-alt-on-newly-allocated counter
	tick     int
	rng      *xrand.SplitMix64
}

// NewTAGE builds the predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	t := &TAGE{
		cfg:     cfg,
		bimodal: make([]uint8, 1<<cfg.BimodalBits),
		rng:     xrand.New(0x7a9e), // deterministic allocation noise
	}
	for i := range t.bimodal {
		t.bimodal[i] = 2 // weakly taken
	}
	for i, tc := range cfg.Tables {
		t.tables = append(t.tables, tageTable{
			entries:  make([]tageEntry, 1<<tc.IdxBits),
			idxMask:  1<<uint(tc.IdxBits) - 1,
			tagMask:  1<<uint(tc.TagBits) - 1,
			idxShift: uint8(2 + tc.IdxBits),
			salt:     uint32(i) * 0x9e37,
		})
	}
	return t
}

// Name implements DirPredictor.
func (t *TAGE) Name() string { return t.cfg.Name }

// Specs implements DirPredictor: index fold + two tag folds per table.
func (t *TAGE) Specs() []FoldSpec {
	var specs []FoldSpec
	for _, tc := range t.cfg.Tables {
		specs = append(specs,
			FoldSpec{Length: tc.HistLen, Width: tc.IdxBits},
			FoldSpec{Length: tc.HistLen, Width: tc.TagBits},
			FoldSpec{Length: tc.HistLen, Width: tc.TagBits - 1},
		)
	}
	return specs
}

// Bind implements DirPredictor.
func (t *TAGE) Bind(base int) { t.foldBase = base }

// StorageBits implements DirPredictor.
func (t *TAGE) StorageBits() int {
	bits := len(t.bimodal) * 2
	for i, tc := range t.cfg.Tables {
		bits += len(t.tables[i].entries) * (tc.TagBits + 3 + 2)
	}
	return bits
}

func (t *TAGE) index(i int, pc uint64, h *History) uint32 {
	tb := &t.tables[i]
	f := h.Folded(t.foldBase + 3*i)
	idx := uint32(pc>>2) ^ uint32(pc>>uint(tb.idxShift)) ^ f ^ tb.salt
	return idx & tb.idxMask
}

func (t *TAGE) tag(i int, pc uint64, h *History) uint16 {
	tb := &t.tables[i]
	f1 := h.Folded(t.foldBase + 3*i + 1)
	f2 := h.Folded(t.foldBase + 3*i + 2)
	return uint16((uint32(pc>>2) ^ f1 ^ f2<<1) & tb.tagMask)
}

func (t *TAGE) bimodalIdx(pc uint64) uint32 {
	return uint32(pc>>2) & (1<<uint(t.cfg.BimodalBits) - 1)
}

// lookup finds the provider (longest-history hit) and alternate
// predictions. provider == -1 means bimodal only.
func (t *TAGE) lookup(pc uint64, h *History) (provider, alt int, provIdx, altIdx uint32) {
	provider, alt = -1, -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		idx := t.index(i, pc, h)
		if t.tables[i].entries[idx].tag == t.tag(i, pc, h) {
			if provider < 0 {
				provider, provIdx = i, idx
			} else {
				alt, altIdx = i, idx
				break
			}
		}
	}
	return
}

func (t *TAGE) bimodalPred(pc uint64) bool { return t.bimodal[t.bimodalIdx(pc)] >= 2 }

// Predict implements DirPredictor.
func (t *TAGE) Predict(pc uint64, h *History) bool {
	provider, alt, provIdx, altIdx := t.lookup(pc, h)
	if provider < 0 {
		return t.bimodalPred(pc)
	}
	e := &t.tables[provider].entries[provIdx]
	// Newly-allocated weak entries may be worse than the alternate
	// prediction; a global counter arbitrates (USE_ALT_ON_NA).
	if (e.ctr == 0 || e.ctr == -1) && e.u == 0 && t.useAlt >= 0 {
		if alt >= 0 {
			return t.tables[alt].entries[altIdx].ctr >= 0
		}
		return t.bimodalPred(pc)
	}
	return e.ctr >= 0
}

// Update implements DirPredictor: standard TAGE training with allocation
// on mispredictions.
func (t *TAGE) Update(pc uint64, h *History, taken bool) {
	provider, alt, provIdx, altIdx := t.lookup(pc, h)
	var provPred, altPred bool
	if alt >= 0 {
		altPred = t.tables[alt].entries[altIdx].ctr >= 0
	} else {
		altPred = t.bimodalPred(pc)
	}
	pred := altPred
	weakProvider := false
	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		provPred = e.ctr >= 0
		weakProvider = (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if weakProvider && t.useAlt >= 0 {
			pred = altPred
		} else {
			pred = provPred
		}
	}
	mispred := pred != taken

	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		// Track whether alt would have done better for weak entries.
		if weakProvider && provPred != altPred {
			if provPred == taken && t.useAlt > -8 {
				t.useAlt--
			} else if altPred == taken && t.useAlt < 7 {
				t.useAlt++
			}
		}
		// Usefulness: provider differs from alt and was right/wrong.
		if provPred != altPred {
			if provPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		updateCtr3(&e.ctr, taken)
		// Also train bimodal when the provider entry is weak, keeping the
		// base predictor warm.
		if e.u == 0 {
			t.updateBimodal(pc, taken)
		}
	} else {
		t.updateBimodal(pc, taken)
	}

	// Allocate a new entry on misprediction (unless the provider is the
	// longest table).
	if mispred && provider < len(t.tables)-1 {
		t.allocate(pc, h, provider, taken)
	}

	// Periodic graceful reset of usefulness counters.
	t.tick++
	if t.tick >= 1<<18 {
		t.tick = 0
		for i := range t.tables {
			ents := t.tables[i].entries
			for j := range ents {
				ents[j].u >>= 1
			}
		}
	}
}

func (t *TAGE) allocate(pc uint64, h *History, provider int, taken bool) {
	start := provider + 1
	// Probabilistically skip ahead so allocations spread across lengths.
	if start < len(t.tables)-1 && t.rng.Bool(0.5) {
		start++
	}
	for i := start; i < len(t.tables); i++ {
		idx := t.index(i, pc, h)
		e := &t.tables[i].entries[idx]
		if e.u == 0 {
			e.tag = t.tag(i, pc, h)
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No free entry: age the candidates.
	for i := start; i < len(t.tables); i++ {
		idx := t.index(i, pc, h)
		if e := &t.tables[i].entries[idx]; e.u > 0 {
			e.u--
		}
	}
}

func (t *TAGE) updateBimodal(pc uint64, taken bool) {
	c := &t.bimodal[t.bimodalIdx(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func updateCtr3(c *int8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > -4 {
		*c--
	}
}
