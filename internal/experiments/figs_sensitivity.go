package experiments

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/repro"
	"fdp/internal/stats"
)

// btbSizes are the BTB capacities swept in Figs. 7 and 11.
var btbSizes = []int{1024, 2048, 4096, 8192, 16384, 32768}

// Fig7 reproduces Fig. 7: the benefit of post-fetch correction as the BTB
// shrinks from 32K to 1K entries.
func Fig7(opts Options) (*Result, error) {
	configs := []core.Config{noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))}
	for _, sz := range btbSizes {
		for _, pfc := range []bool{false, true} {
			c := core.DefaultConfig()
			c.BTBEntries = sz
			c.PFC = pfc
			c.Name = fmt.Sprintf("btb%d-pfc%v", sz, pfc)
			configs = append(configs, c)
		}
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 7: PFC benefit vs BTB capacity (speedup over no-FDP baseline)",
		"BTB entries", "PFC off", "PFC on", "PFC gain", "MPKI off", "MPKI on")
	for _, sz := range btbSizes {
		off := sets[fmt.Sprintf("btb%d-pfcfalse", sz)]
		on := sets[fmt.Sprintf("btb%d-pfctrue", sz)]
		spOff := off.GeoMeanSpeedup(baseSet)
		spOn := on.GeoMeanSpeedup(baseSet)
		t.AddRow(fmt.Sprintf("%dK", sz/1024), speedupPct(spOff), speedupPct(spOn),
			speedupPct(spOn/spOff), off.MeanBranchMPKI(), on.MeanBranchMPKI())
	}
	return &Result{
		ID: "fig7", Title: "PFC benefit vs BTB capacity",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: PFC gains +9.3% at 1K and +2.4% at 8K entries (via 75.0% / 25.2%",
			"misprediction reductions); at 32K PFC is ~neutral (+0.1%, +1.5% mispredicts)",
		},
	}, nil
}

// contractBTBPair derives the (PFC off, PFC on) config pair contracts
// score at one BTB capacity.
func contractBTBPair(entries int) (off, on core.Config) {
	off = core.DefaultConfig()
	off.BTBEntries = entries
	off.PFC = false
	off.Name = fmt.Sprintf("btb%dk-pfc-off", entries/1024)
	on = off
	on.PFC = true
	on.Name = fmt.Sprintf("btb%dk-pfc-on", entries/1024)
	return off, on
}

// contractFig7 is Fig7's reproduction contract: PFC pays off exactly
// where BTB capacity runs out.
func contractFig7() repro.Contract {
	off1k, on1k := contractBTBPair(1024)
	off8k, on8k := contractBTBPair(8192)
	off32k, on32k := contractBTBPair(32768)
	return repro.Contract{
		Artifact: "fig7", Title: "PFC benefit vs BTB capacity",
		Baseline: "baseline",
		Configs:  []core.Config{core.BaselineConfig(), off1k, on1k, off8k, on8k, off32k, on32k},
		Expectations: []repro.Expectation{
			{
				ID:       "pfc-rescues-small-btb",
				Claim:    "PFC rescues a 1K-entry BTB (paper: +9.3% at 1K)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"btb1k-pfc-on", "btb1k-pfc-off"}, MinGap: 0.01,
			},
			{
				ID:       "pfc-gain-dies-out",
				Claim:    "the PFC gain is large at 1K entries and ~gone at 32K (paper: +9.3% -> +0.1%)",
				Severity: repro.Hard, Kind: repro.KindCrossover, Metric: repro.MetricSpeedup,
				Configs:  []string{"btb1k-pfc-on", "btb8k-pfc-on", "btb32k-pfc-on"},
				ConfigsB: []string{"btb1k-pfc-off", "btb8k-pfc-off", "btb32k-pfc-off"},
				StartMin: 0.02, EndMax: 0.01,
			},
		},
	}
}

// Fig8 reproduces Fig. 8: the Table V history-management policies, each
// with PFC on and off.
func Fig8(opts Options) (*Result, error) {
	configs := []core.Config{noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))}
	for _, hc := range historyConfigs() {
		for _, pfc := range []bool{false, true} {
			c := core.DefaultConfig()
			c.HistPolicy = hc.policy
			c.BTBAllocPolicy = hc.alloc
			c.PFC = pfc
			c.Name = fmt.Sprintf("%s-pfc%v", hc.name, pfc)
			configs = append(configs, c)
		}
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 8: branch history management (speedup over no-FDP baseline)",
		"policy", "PFC off", "PFC on", "MPKI (pfc on)", "fixup flushes/KI")
	for _, hc := range historyConfigs() {
		off := sets[hc.name+"-pfcfalse"]
		on := sets[hc.name+"-pfctrue"]
		var flushPKI float64
		for _, r := range on.Runs {
			flushPKI += 1000 * float64(r.HistFixupFlushes) / float64(r.Instructions)
		}
		flushPKI /= float64(len(on.Runs))
		t.AddRow(hc.name, speedupPct(off.GeoMeanSpeedup(baseSet)),
			speedupPct(on.GeoMeanSpeedup(baseSet)), on.MeanBranchMPKI(), flushPKI)
	}
	return &Result{
		ID: "fig8", Title: "Branch history management",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: THR ~= Ideal and beats every GHR variant; GHR2's fixup flushes cost",
			"23.7% performance; GHR0 (no fix) raises mispredictions ~19.5%",
		},
	}, nil
}

// contractFig8 is Fig8's reproduction contract: taken-only target
// history beats the fixup policy and tracks the idealized history.
func contractFig8() repro.Contract {
	ghr2 := core.DefaultConfig()
	ghr2.Name = "ghr2"
	ghr2.HistPolicy = core.HistGHRFix
	ghr2.BTBAllocPolicy = core.AllocTakenOnly
	ideal := core.DefaultConfig()
	ideal.Name = "ideal-hist"
	ideal.HistPolicy = core.HistIdeal
	ideal.BTBAllocPolicy = core.AllocTakenOnly
	return repro.Contract{
		Artifact: "fig8", Title: "Branch history management",
		Baseline: "baseline",
		Configs:  []core.Config{core.BaselineConfig(), core.DefaultConfig(), ghr2, ideal},
		Expectations: []repro.Expectation{
			{
				ID:       "thr-beats-ghr2",
				Claim:    "THR beats the fixup policy GHR2 (paper: GHR2's flushes cost 23.7%)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp", "ghr2"}, MinGap: 0.001,
			},
			{
				ID:       "thr-tracks-ideal",
				Claim:    "THR tracks the idealized history within a few points (paper: THR ~= Ideal)",
				Severity: repro.Warn, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp", "ideal-hist"}, MinGap: -0.05,
			},
		},
	}
}

// Fig11 reproduces Fig. 11: BTB capacity sensitivity with and without FDP.
func Fig11(opts Options) (*Result, error) {
	var configs []core.Config
	for _, sz := range btbSizes {
		fdp := core.DefaultConfig()
		fdp.BTBEntries = sz
		fdp.Name = fmt.Sprintf("fdp-btb%d", sz)
		configs = append(configs, fdp)
		nofdp := noFDP(core.DefaultConfig())
		nofdp.BTBEntries = sz
		nofdp.Name = fmt.Sprintf("nofdp-btb%d", sz)
		configs = append(configs, nofdp)
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	// Normalize to the 1K-entry no-FDP machine (the smallest baseline).
	baseSet := sets["nofdp-btb1024"]
	t := stats.NewTable("Fig 11: BTB capacity sensitivity (speedup over 1K-entry no-FDP)",
		"BTB entries", "no FDP", "FDP", "MPKI no-FDP", "MPKI FDP")
	for _, sz := range btbSizes {
		n := sets[fmt.Sprintf("nofdp-btb%d", sz)]
		f := sets[fmt.Sprintf("fdp-btb%d", sz)]
		t.AddRow(fmt.Sprintf("%dK", sz/1024),
			speedupPct(n.GeoMeanSpeedup(baseSet)), speedupPct(f.GeoMeanSpeedup(baseSet)),
			n.MeanBranchMPKI(), f.MeanBranchMPKI())
	}
	return &Result{
		ID: "fig11", Title: "BTB capacity sensitivity",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: FDP wins at every capacity (latency hiding); without FDP the gains from",
			"capacity are moderate with the largest jump once the branch footprint fits",
		},
	}, nil
}

// Fig12 reproduces Fig. 12: direction predictor sensitivity (Gshare-8KB,
// TAGE at 9/18/36KB, perfect direction, Perfect All), each with PFC on
// and off.
func Fig12(opts Options) (*Result, error) {
	preds := []core.DirKind{core.DirGshare, core.DirTAGE9, core.DirTAGE18, core.DirTAGE36, core.DirPerfect}
	configs := []core.Config{noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))}
	for _, d := range preds {
		for _, pfc := range []bool{false, true} {
			c := core.DefaultConfig()
			c.Dir = d
			c.PFC = pfc
			c.Name = fmt.Sprintf("%s-pfc%v", d, pfc)
			configs = append(configs, c)
		}
	}
	pall := core.DefaultConfig()
	pall.Dir = core.DirPerfect
	pall.PerfectBTB = true
	pall.PerfectIndirect = true
	pall.Name = "perfect-all"
	configs = append(configs, pall)

	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 12: direction predictor sensitivity (speedup over no-FDP baseline)",
		"predictor", "PFC off", "PFC on", "MPKI (pfc on)")
	for _, d := range preds {
		off := sets[fmt.Sprintf("%s-pfcfalse", d)]
		on := sets[fmt.Sprintf("%s-pfctrue", d)]
		t.AddRow(string(d), speedupPct(off.GeoMeanSpeedup(baseSet)),
			speedupPct(on.GeoMeanSpeedup(baseSet)), on.MeanBranchMPKI())
	}
	t.AddRow("perfect-all", "-", speedupPct(sets["perfect-all"].GeoMeanSpeedup(baseSet)),
		sets["perfect-all"].MeanBranchMPKI())
	return &Result{
		ID: "fig12", Title: "Direction predictor sensitivity",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: gshare +31.4% vs TAGE +37.1%; PFC *hurts* gshare (-6.0%) but helps TAGE;",
			"perfect direction makes PFC more effective; Perfect All +49.4%",
		},
	}, nil
}

// contractFig12 is Fig12's reproduction contract: the "conventional
// wisdom has changed" result — PFC helps a strong direction predictor
// and hurts a weak one.
func contractFig12() repro.Contract {
	fdpOff := core.DefaultConfig()
	fdpOff.Name = "fdp-pfc-off"
	fdpOff.PFC = false
	gshareOn := core.DefaultConfig()
	gshareOn.Name = "gshare-pfc-on"
	gshareOn.Dir = core.DirGshare
	gshareOff := gshareOn
	gshareOff.Name = "gshare-pfc-off"
	gshareOff.PFC = false
	return repro.Contract{
		Artifact: "fig12", Title: "Branch direction predictor sensitivity",
		Baseline: "baseline",
		Configs:  []core.Config{core.BaselineConfig(), core.DefaultConfig(), fdpOff, gshareOn, gshareOff},
		Expectations: []repro.Expectation{
			{
				ID:       "pfc-hurts-gshare",
				Claim:    "PFC clearly hurts a weak gshare direction predictor (paper: -6.0%)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"gshare-pfc-off", "gshare-pfc-on"}, MinGap: 0.02,
			},
			{
				ID:       "pfc-safe-with-tage",
				Claim:    "with TAGE the gshare-scale PFC loss disappears — at worst ~neutral here (paper: +2.4pp gain; see EXPERIMENTS.md known deviations)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp", "fdp-pfc-off"}, MinGap: -0.05,
			},
		},
	}
}

// Fig13 reproduces Fig. 13: prediction bandwidth (B6/B12/B18/B18m) and
// BTB latency (1-4 cycles) sensitivity.
func Fig13(opts Options) (*Result, error) {
	configs := []core.Config{noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))}
	type bw struct {
		name  string
		width int
		taken int
	}
	bws := []bw{{"B6", 6, 1}, {"B12", 12, 1}, {"B18", 18, 1}, {"B18m", 18, 2}}
	for _, b := range bws {
		c := core.DefaultConfig()
		c.PredictWidth = b.width
		c.MaxTakenPerCycle = b.taken
		c.Name = b.name
		configs = append(configs, c)
	}
	for _, lat := range []int{1, 2, 3, 4} {
		c := core.DefaultConfig()
		c.BTBLatency = lat
		c.Name = fmt.Sprintf("lat%d", lat)
		configs = append(configs, c)
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t1 := stats.NewTable("Fig 13a: prediction bandwidth (speedup over no-FDP baseline)",
		"bandwidth", "speedup")
	for _, b := range bws {
		t1.AddRow(b.name, speedupPct(sets[b.name].GeoMeanSpeedup(baseSet)))
	}
	t2 := stats.NewTable("Fig 13b: BTB latency", "latency (cycles)", "speedup")
	for _, lat := range []int{1, 2, 3, 4} {
		t2.AddRow(lat, speedupPct(sets[fmt.Sprintf("lat%d", lat)].GeoMeanSpeedup(baseSet)))
	}
	return &Result{
		ID: "fig13", Title: "Prediction bandwidth / BTB latency sensitivity",
		Tables: []*stats.Table{t1, t2},
		Notes: []string{
			"paper: B18 ~= B12; B6 costs 0.6%; B18m adds 0.2%; 4-cycle BTB costs 1.8% vs 2-cycle",
		},
	}, nil
}

// ftqSizes are the FTQ depths swept in Fig. 14.
var ftqSizes = []int{2, 4, 8, 12, 16, 24, 32}

// Fig14 reproduces Fig. 14: FTQ size sensitivity plus the exposed-miss
// classification.
func Fig14(opts Options) (*Result, error) {
	var configs []core.Config
	for _, sz := range ftqSizes {
		c := core.DefaultConfig()
		c.FTQEntries = sz
		c.Name = fmt.Sprintf("ftq%d", sz)
		if sz == 2 {
			c.PFC = false // 2-entry FTQ is the paper's "no FDP" point
		}
		configs = append(configs, c)
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["ftq2"]
	t := stats.NewTable("Fig 14: FTQ size sensitivity (normalized to 2-entry FTQ)",
		"FTQ entries", "speedup", "fully exposed", "partially exposed", "covered")
	for _, sz := range ftqSizes {
		s := sets[fmt.Sprintf("ftq%d", sz)]
		var fe, pe, cov uint64
		for _, r := range s.Runs {
			fe += r.MissFullyExposed
			pe += r.MissPartiallyExposed
			cov += r.MissCovered
		}
		tot := fe + pe + cov
		frac := func(x uint64) string {
			if tot == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(x)/float64(tot))
		}
		t.AddRow(sz, speedupPct(s.GeoMeanSpeedup(baseSet)), frac(fe), frac(pe), frac(cov))
	}
	return &Result{
		ID: "fig14", Title: "FTQ size sensitivity and exposed misses",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: +23.7% at 4 entries, +39.5% at 12, marginal beyond; 76% of misses",
			"exposed at 2 entries; a 24-entry FTQ removes 90.6% of exposed misses",
		},
	}, nil
}

// contractFig14 is Fig14's reproduction contract: the FDP mechanism —
// run-ahead depth hides misses, so starvation drops and the benefit
// grows with FTQ depth.
func contractFig14() repro.Contract {
	ftq4 := core.DefaultConfig()
	ftq4.Name = "ftq4"
	ftq4.FTQEntries = 4
	ftq12 := core.DefaultConfig()
	ftq12.Name = "ftq12"
	ftq12.FTQEntries = 12
	return repro.Contract{
		Artifact: "fig14", Title: "FTQ size sensitivity and exposed misses",
		Baseline: "baseline",
		Configs:  []core.Config{core.BaselineConfig(), core.DefaultConfig(), ftq4, ftq12},
		Expectations: []repro.Expectation{
			{
				ID:       "fdp-cuts-starvation",
				Claim:    "FDP reduces fetch starvation vs the 2-entry FTQ baseline (the mechanism)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricStarvationPKI,
				Configs: []string{"baseline", "fdp"}, MinGap: 1,
			},
			{
				ID:       "ftq-depth-monotonic",
				Claim:    "the speedup grows with FTQ depth 4 -> 12 -> 24 (paper: +23.7% / +39.5% / marginal beyond)",
				Severity: repro.Warn, Kind: repro.KindMonotonic, Metric: repro.MetricSpeedup,
				Configs: []string{"ftq4", "ftq12", "fdp"}, Dir: 1, Slack: 0.01,
			},
		},
	}
}
