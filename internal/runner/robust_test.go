package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/trace"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{fmt.Errorf("job: %w", ErrPanic), ClassTransient},
		{fmt.Errorf("job: %w", ErrHung), ClassFatal},
		{fmt.Errorf("read: %w", trace.ErrCorrupt), ClassCorruptInput},
		{fmt.Errorf("core: %w", core.ErrInvariant), ClassFatal},
		{errors.New("anything else"), ClassFatal},
		{&Error{Class: ClassTransient, Err: errors.New("x")}, ClassTransient},
		{fmt.Errorf("wrapped: %w", &Error{Class: ClassCorruptInput, Err: errors.New("x")}), ClassCorruptInput},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorWrapping(t *testing.T) {
	inner := fmt.Errorf("boom: %w", ErrPanic)
	e := &Error{Class: ClassTransient, Job: "fdp/server_a", Attempts: 3, Err: inner}
	if !errors.Is(e, ErrPanic) {
		t.Error("Error does not unwrap to its cause")
	}
	msg := e.Error()
	for _, want := range []string{"fdp/server_a", "transient", "3"} {
		if !contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBackoffDeterministic: the jitter is a pure function of (seed,
// attempt) — reproducible chaos — and every delay stays within
// [Base/2 * 2^k, Cap].
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}.normalized()
	seed := BackoffSeed("00ff00ff00ff00ff" + "0000000000000000000000000000000000000000000000000000000000000000"[:48])
	for retry := 1; retry <= 4; retry++ {
		a := p.Backoff(retry, seed)
		b := p.Backoff(retry, seed)
		if a != b {
			t.Fatalf("retry %d: backoff not deterministic (%v vs %v)", retry, a, b)
		}
		if a <= 0 || a > p.Cap {
			t.Fatalf("retry %d: backoff %v outside (0, %v]", retry, a, p.Cap)
		}
	}
	if p.Backoff(1, seed) == p.Backoff(1, seed^1) {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

// TestExecuteRetriesTransientFault: an injected panic on the first
// attempt is classified transient and retried; the job then succeeds and
// its result matches a clean simulation.
func TestExecuteRetriesTransientFault(t *testing.T) {
	specs := smallSpecs(t)[:2]
	var faults atomic.Int32
	st := &Status{}
	reg := obs.NewRegistry()
	results, err := Execute(context.Background(), specs, Options{
		Parallel: 2,
		Reg:      reg,
		Status:   st,
		Retry:    RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond},
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if job == 0 && attempt == 1 {
				faults.Add(1)
				panic("injected transient fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if faults.Load() != 1 {
		t.Fatalf("fault injected %d times, want 1", faults.Load())
	}
	if got := reg.Counter(MetricRetries).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricRetries, got)
	}
	if st.Retries.Load() != 1 || st.Panics.Load() != 1 {
		t.Fatalf("status retries=%d panics=%d, want 1/1", st.Retries.Load(), st.Panics.Load())
	}
	for i, r := range results {
		if r.Err != nil || r.Run == nil {
			t.Fatalf("job %d: err=%v run=%v after retry", i, r.Err, r.Run)
		}
	}
}

// TestExecuteRetriesExhausted: a job that fails transiently on every
// attempt is reported with its attempt count and transient class.
func TestExecuteRetriesExhausted(t *testing.T) {
	specs := smallSpecs(t)[:1]
	_, err := Execute(context.Background(), specs, Options{
		Parallel: 1,
		Retry:    RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond},
		FaultHook: func(ctx context.Context, job, attempt int) error {
			panic("always failing")
		},
	})
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("Execute error %T %v, want *Error", err, err)
	}
	if re.Class != ClassTransient || re.Attempts != 3 {
		t.Fatalf("error = %+v, want transient after 3 attempts", re)
	}
}

// TestExecuteWatchdogCancelsHang: a job that stops making progress (here:
// blocked before its first cycle) is canceled by the watchdog and fails
// as a fatal hung-job error, not a cancellation casualty.
func TestExecuteWatchdogCancelsHang(t *testing.T) {
	specs := smallSpecs(t)[:2]
	st := &Status{}
	reg := obs.NewRegistry()
	// The deadline must comfortably exceed one heartbeat interval (the
	// cycle loop stamps every 2^14 cycles): under -race a single chunk
	// can take tens of milliseconds, and a too-tight deadline makes the
	// watchdog fire on the *healthy* job as well.
	results, err := Execute(context.Background(), specs, Options{
		Parallel:        2,
		Reg:             reg,
		Status:          st,
		WatchdogTimeout: 400 * time.Millisecond,
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if job == 0 {
				<-ctx.Done() // hang until someone kills us
				return ctx.Err()
			}
			return nil
		},
	})
	if !errors.Is(err, ErrHung) {
		t.Fatalf("Execute error %v, want ErrHung", err)
	}
	var re *Error
	if !errors.As(err, &re) || re.Class != ClassFatal {
		t.Fatalf("hung job not classified fatal: %v", err)
	}
	if got := reg.Counter(MetricWatchdogFired).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricWatchdogFired, got)
	}
	if st.Watchdog.Load() != 1 {
		t.Fatalf("status watchdog = %d, want 1", st.Watchdog.Load())
	}
	if results[0].Err == nil {
		t.Fatal("hung job's result carries no error")
	}
	if snap := st.Snapshot(); len(snap.Jobs) != 0 {
		t.Fatalf("in-flight job table not drained: %+v", snap.Jobs)
	}
}

// TestExecuteWatchdogSparesHealthyRun: a generous deadline never fires on
// jobs that are actually simulating.
func TestExecuteWatchdogSparesHealthyRun(t *testing.T) {
	specs := smallSpecs(t)
	reg := obs.NewRegistry()
	results, err := Execute(context.Background(), specs, Options{
		Parallel:        2,
		Reg:             reg,
		WatchdogTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricWatchdogFired).Value(); got != 0 {
		t.Fatalf("watchdog fired %d times on healthy jobs", got)
	}
	for i, r := range results {
		if r.Run == nil {
			t.Fatalf("job %d has no result", i)
		}
	}
}

// TestExecuteKeepGoing: a terminally failing job is quarantined — its
// Result carries the classified error — while every other job completes;
// the first quarantined error is still reported.
func TestExecuteKeepGoing(t *testing.T) {
	specs := smallSpecs(t)
	st := &Status{}
	reg := obs.NewRegistry()
	results, err := Execute(context.Background(), specs, Options{
		Parallel:  2,
		Reg:       reg,
		Status:    st,
		KeepGoing: true,
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if job == 1 {
				return fmt.Errorf("reading workload: %w", trace.ErrCorrupt)
			}
			return nil
		},
	})
	var re *Error
	if !errors.As(err, &re) || re.Class != ClassCorruptInput {
		t.Fatalf("Execute error %v, want corrupt-input *Error", err)
	}
	for i, r := range results {
		if i == 1 {
			if r.Err == nil || r.Run != nil {
				t.Fatalf("quarantined job 1: err=%v run=%v", r.Err, r.Run)
			}
			continue
		}
		if r.Err != nil || r.Run == nil {
			t.Fatalf("job %d did not complete under keep-going: err=%v", i, r.Err)
		}
	}
	if got := reg.Counter(MetricQuarantined).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricQuarantined, got)
	}
	if st.Quarantined.Load() != 1 {
		t.Fatalf("status quarantined = %d, want 1", st.Quarantined.Load())
	}
	if got := reg.Counter(MetricCanceled).Value(); got != 0 {
		t.Fatalf("keep-going canceled %d jobs", got)
	}
}

// TestExecuteFirstErrorStillDefault: without KeepGoing an injected fatal
// fault aborts the pool (the pre-existing contract is unchanged).
func TestExecuteFirstErrorStillDefault(t *testing.T) {
	specs := smallSpecs(t)
	_, err := Execute(context.Background(), specs, Options{
		Parallel: 1,
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if job == 0 {
				return fmt.Errorf("reading workload: %w", trace.ErrCorrupt)
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("fatal fault did not abort the pool")
	}
}

// TestExecuteJournalGatesCache: with a journal configured, a cached
// result is trusted only for journaled keys — a warm cache with an empty
// journal re-simulates everything.
func TestExecuteJournalGatesCache(t *testing.T) {
	specs := smallSpecs(t)[:2]
	dir := t.TempDir()
	cache, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}

	jr1 := openTestJournal(t, dir+"/run1.wal")
	reg1 := obs.NewRegistry()
	if _, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: cache, Journal: jr1, Reg: reg1}); err != nil {
		t.Fatal(err)
	}
	if jr1.Len() != len(specs) {
		t.Fatalf("journal has %d keys, want %d", jr1.Len(), len(specs))
	}

	// Same warm cache, fresh empty journal: nothing is trusted.
	jr2 := openTestJournal(t, dir+"/run2.wal")
	reg2 := obs.NewRegistry()
	if _, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: cache, Journal: jr2, Reg: reg2}); err != nil {
		t.Fatal(err)
	}
	if hits := reg2.Counter(MetricCacheHits).Value(); hits != 0 {
		t.Fatalf("unjournaled cache served %d hits", hits)
	}

	// Same cache with its populated journal: all hits.
	reg3 := obs.NewRegistry()
	if _, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: cache, Journal: jr2, Reg: reg3}); err != nil {
		t.Fatal(err)
	}
	if hits := reg3.Counter(MetricCacheHits).Value(); hits != uint64(len(specs)) {
		t.Fatalf("journaled resume served %d hits, want %d", hits, len(specs))
	}
}

// TestExecuteJournalResume: the kill -9 resume contract in-process — a
// second campaign over a superset of specs re-executes exactly the
// unjournaled ones.
func TestExecuteJournalResume(t *testing.T) {
	specs := smallSpecs(t)
	dir := t.TempDir()

	c1, _ := NewCache(0, dir+"/cache")
	j1 := openTestJournal(t, dir+"/run.wal")
	if _, err := Execute(context.Background(), specs[:3], Options{Parallel: 2, Cache: c1, Journal: j1}); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// "New process": fresh cache over the same dir, reopened journal.
	c2, _ := NewCache(0, dir+"/cache")
	j2 := openTestJournal(t, dir+"/run.wal")
	if rec, _ := j2.Recovered(); rec != 3 {
		t.Fatalf("journal replayed %d records, want 3", rec)
	}
	reg := obs.NewRegistry()
	results, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: c2, Journal: j2, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(MetricCacheHits).Value(); hits != 3 {
		t.Fatalf("resume served %d hits, want 3", hits)
	}
	if misses := reg.Counter(MetricCacheMisses).Value(); misses != 1 {
		t.Fatalf("resume simulated %d jobs, want 1", misses)
	}
	for i, r := range results {
		if r.Run == nil {
			t.Fatalf("job %d missing after resume", i)
		}
	}
	if j2.Len() != len(specs) {
		t.Fatalf("journal has %d keys after resume, want %d", j2.Len(), len(specs))
	}
}
