module fdp

go 1.22
