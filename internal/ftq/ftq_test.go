package ftq

import (
	"testing"
	"testing/quick"
)

func TestBlockGeometry(t *testing.T) {
	if BlockBase(0x1234) != 0x1220 {
		t.Errorf("BlockBase = %#x", BlockBase(0x1234))
	}
	if Offset(0x1220) != 0 || Offset(0x1224) != 1 || Offset(0x123c) != 7 {
		t.Error("Offset wrong")
	}
	e := &Entry{StartPC: 0x1228, EndOffset: 6}
	if e.StartOffset() != 2 || e.BlockBase() != 0x1220 || e.NumInsts() != 5 {
		t.Errorf("entry geometry: so=%d bb=%#x n=%d", e.StartOffset(), e.BlockBase(), e.NumInsts())
	}
	if e.PCAt(3) != 0x122c {
		t.Errorf("PCAt = %#x", e.PCAt(3))
	}
}

func TestHintAndDetected(t *testing.T) {
	e := &Entry{Hints: 0b0101_0010, Detected: 0b0000_0010, DetectedTaken: 0}
	if !e.HintAt(1) || e.HintAt(0) || !e.HintAt(4) {
		t.Error("HintAt wrong")
	}
	if !e.DetectedAt(1) || e.DetectedAt(4) {
		t.Error("DetectedAt wrong")
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := New(4)
	for i := 0; i < 3; i++ {
		e := q.Push()
		e.StartPC = uint64(0x1000 + i*32)
	}
	if q.Len() != 3 || q.Full() || q.Empty() {
		t.Errorf("Len=%d Full=%v Empty=%v", q.Len(), q.Full(), q.Empty())
	}
	if q.Head().StartPC != 0x1000 {
		t.Errorf("Head = %#x", q.Head().StartPC)
	}
	q.PopHead()
	if q.Head().StartPC != 0x1020 {
		t.Errorf("after pop Head = %#x", q.Head().StartPC)
	}
	if q.At(1).StartPC != 0x1040 {
		t.Errorf("At(1) = %#x", q.At(1).StartPC)
	}
}

func TestPushFullPanics(t *testing.T) {
	q := New(2)
	q.Push()
	q.Push()
	defer func() {
		if recover() == nil {
			t.Error("Push into full FTQ did not panic")
		}
	}()
	q.Push()
}

func TestPopEmptyPanics(t *testing.T) {
	q := New(2)
	defer func() {
		if recover() == nil {
			t.Error("Pop from empty FTQ did not panic")
		}
	}()
	q.PopHead()
}

func TestWraparound(t *testing.T) {
	q := New(3)
	seq := []uint64{}
	push := func(pc uint64) {
		e := q.Push()
		e.StartPC = pc
		seq = append(seq, pc)
	}
	push(1)
	push(2)
	q.PopHead()
	push(3)
	push(4) // wraps
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if q.At(i).StartPC != w {
			t.Errorf("At(%d) = %d, want %d", i, q.At(i).StartPC, w)
		}
	}
}

func TestSeqMonotonic(t *testing.T) {
	q := New(2)
	a := q.Push().Seq
	q.PopHead()
	b := q.Push().Seq
	q.PopHead()
	c := q.Push().Seq
	if !(a < b && b < c) {
		t.Errorf("Seq not monotonic: %d %d %d", a, b, c)
	}
}

func TestTruncateAfter(t *testing.T) {
	q := New(8)
	for i := 0; i < 5; i++ {
		q.Push().StartPC = uint64(i)
	}
	q.TruncateAfter(1)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.At(0).StartPC != 0 || q.At(1).StartPC != 1 {
		t.Error("wrong survivors")
	}
	// Pushing again reuses slots cleanly.
	q.Push().StartPC = 99
	if q.At(2).StartPC != 99 {
		t.Error("push after truncate broken")
	}
}

func TestFlush(t *testing.T) {
	q := New(4)
	q.Push()
	q.Push()
	q.Flush()
	if !q.Empty() {
		t.Error("Flush left entries")
	}
	q.Push() // usable after flush
	if q.Len() != 1 {
		t.Error("push after flush broken")
	}
}

func TestPushResetsFields(t *testing.T) {
	q := New(1)
	e := q.Push()
	e.StartPC = 0xdead
	e.State = StateFetchable
	e.Hints = 0xff
	e.PFCChecked = true
	q.PopHead()
	e2 := q.Push()
	if e2.StartPC != 0 || e2.State != StateInvalid || e2.Hints != 0 || e2.PFCChecked {
		t.Error("Push did not reset reused entry")
	}
}

// Property: a random sequence of pushes and pops behaves like a reference
// slice queue.
func TestMatchesReferenceQueue(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New(6)
		var ref []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 && !q.Full() {
				q.Push().StartPC = next
				ref = append(ref, next)
				next++
			} else if op%2 == 1 && !q.Empty() {
				if q.Head().StartPC != ref[0] {
					return false
				}
				q.PopHead()
				ref = ref[1:]
			}
		}
		if q.Len() != len(ref) {
			return false
		}
		for i, w := range ref {
			if q.At(i).StartPC != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostMatchesTableIII(t *testing.T) {
	c := Cost(24)
	if c.PerEntryBits != 65 {
		t.Errorf("per-entry bits = %d, want 65", c.PerEntryBits)
	}
	if c.TotalBytes != 195 {
		t.Errorf("total = %d bytes, want the paper's 195", c.TotalBytes)
	}
	if c.PFCExtraBytes != 24 {
		t.Errorf("PFC extra = %d bytes, want 24", c.PFCExtraBytes)
	}
	// Field widths straight from Table III.
	if c.StartAddrBits != 48 || c.PredTakenBits != 1 || c.EndOffsetBits != 3 ||
		c.WayBits != 3 || c.StateBits != 2 || c.HintBits != 8 {
		t.Errorf("field widths: %+v", c)
	}
}

func TestCostScalesLinearly(t *testing.T) {
	c2, c24 := Cost(2), Cost(24)
	if c24.TotalBits != 12*c2.TotalBits {
		t.Errorf("cost not linear: %d vs %d", c24.TotalBits, c2.TotalBits)
	}
}
