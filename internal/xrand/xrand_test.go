package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Errorf("after reseed first draw = %d, want %d", got, first)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 draws collided across seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(0).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(1)
	if r.Bool(0) {
		t.Error("Bool(0) = true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) = false")
	}
	if r.Bool(-0.5) {
		t.Error("Bool(-0.5) = true")
	}
	if !r.Bool(1.5) {
		t.Error("Bool(1.5) = false")
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 9 {
		t.Errorf("Geometric(8) mean = %v", mean)
	}
}

func TestGeometricMinimum(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(0.1); g != 1 {
			t.Fatalf("Geometric(0.1) = %d, want 1", g)
		}
	}
}

func TestMixIsInjectiveish(t *testing.T) {
	// Property: Mix is deterministic and different inputs map to
	// different outputs (true for a bijective finalizer).
	f := func(x, y uint64) bool {
		if x == y {
			return Mix(x) == Mix(y)
		}
		return Mix(x) != Mix(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Crude bucket uniformity check.
	r := New(123)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	for i, c := range buckets {
		if c < n/16-n/64 || c > n/16+n/64 {
			t.Errorf("bucket %d count %d far from %d", i, c, n/16)
		}
	}
}
